//! Network topologies, distance metrics and deterministic routes.

use serde::{Deserialize, Serialize};

/// Physical layout of the machine's nodes.
///
/// A node hosts one processor group together with one shared-memory module
/// and the group's local memory block (the organisation of the paper's
/// Figures 2 and 5). Distances are expressed in *hops*; the model's
/// "latency proportional to distance" requirement follows from charging
/// [`crate::Network::hop_latency`] cycles per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// A bidirectional ring of `nodes` nodes; distance is the shorter way
    /// around.
    Ring {
        /// Number of nodes.
        nodes: usize,
    },
    /// A `width × height` 2-D mesh with XY dimension-ordered routing;
    /// distance is the Manhattan metric.
    Mesh2D {
        /// Nodes per row.
        width: usize,
        /// Number of rows.
        height: usize,
    },
    /// An ideal crossbar: every pair of distinct nodes is one hop apart.
    /// Contention still arises on the destination port.
    Crossbar {
        /// Number of nodes.
        nodes: usize,
    },
}

impl Topology {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Ring { nodes } | Topology::Crossbar { nodes } => nodes,
            Topology::Mesh2D { width, height } => width * height,
        }
    }

    /// Hop distance between two nodes.
    pub fn distance(&self, from: usize, to: usize) -> usize {
        self.check(from);
        self.check(to);
        match *self {
            Topology::Ring { nodes } => {
                let d = from.abs_diff(to);
                d.min(nodes - d)
            }
            Topology::Mesh2D { width, .. } => {
                let (fx, fy) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                fx.abs_diff(tx) + fy.abs_diff(ty)
            }
            Topology::Crossbar { .. } => usize::from(from != to),
        }
    }

    /// The maximum distance between any two nodes.
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::Ring { nodes } => nodes / 2,
            Topology::Mesh2D { width, height } => (width - 1) + (height - 1),
            Topology::Crossbar { nodes } => usize::from(nodes > 1),
        }
    }

    /// The deterministic shortest route from `from` to `to` as the sequence
    /// of nodes *entered* (excluding `from`, including `to`). An empty
    /// route means `from == to`.
    ///
    /// Rings route the shorter way (ties broken towards increasing node
    /// numbers); meshes use XY dimension order — first along the row, then
    /// along the column — which is deadlock-free and matches common NoC
    /// practice.
    pub fn route(&self, from: usize, to: usize) -> Vec<usize> {
        self.check(from);
        self.check(to);
        let mut path = Vec::with_capacity(self.distance(from, to));
        match *self {
            Topology::Ring { nodes } => {
                let fwd = (to + nodes - from) % nodes;
                let bwd = (from + nodes - to) % nodes;
                let mut cur = from;
                if fwd <= bwd {
                    while cur != to {
                        cur = (cur + 1) % nodes;
                        path.push(cur);
                    }
                } else {
                    while cur != to {
                        cur = (cur + nodes - 1) % nodes;
                        path.push(cur);
                    }
                }
            }
            Topology::Mesh2D { width, .. } => {
                let (mut x, mut y) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                while x != tx {
                    x = if x < tx { x + 1 } else { x - 1 };
                    path.push(y * width + x);
                }
                while y != ty {
                    y = if y < ty { y + 1 } else { y - 1 };
                    path.push(y * width + x);
                }
            }
            Topology::Crossbar { .. } => {
                if from != to {
                    path.push(to);
                }
            }
        }
        path
    }

    fn check(&self, node: usize) {
        assert!(
            node < self.nodes(),
            "node {node} out of range for {self:?} ({} nodes)",
            self.nodes()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distance_wraps() {
        let t = Topology::Ring { nodes: 8 };
        assert_eq!(t.distance(0, 3), 3);
        assert_eq!(t.distance(0, 5), 3); // shorter backwards
        assert_eq!(t.distance(7, 0), 1);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let t = Topology::Mesh2D {
            width: 4,
            height: 3,
        };
        assert_eq!(t.nodes(), 12);
        assert_eq!(t.distance(0, 11), 3 + 2);
        assert_eq!(t.distance(5, 6), 1);
        assert_eq!(t.diameter(), 5);
    }

    #[test]
    fn crossbar_is_one_hop() {
        let t = Topology::Crossbar { nodes: 16 };
        assert_eq!(t.distance(3, 3), 0);
        assert_eq!(t.distance(3, 9), 1);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn routes_have_distance_length_and_end_at_target() {
        let topologies = [
            Topology::Ring { nodes: 9 },
            Topology::Mesh2D {
                width: 4,
                height: 4,
            },
            Topology::Crossbar { nodes: 6 },
        ];
        for t in topologies {
            for from in 0..t.nodes() {
                for to in 0..t.nodes() {
                    let route = t.route(from, to);
                    assert_eq!(route.len(), t.distance(from, to), "{t:?} {from}->{to}");
                    if from != to {
                        assert_eq!(*route.last().unwrap(), to);
                    } else {
                        assert!(route.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_routes_are_xy_ordered() {
        let t = Topology::Mesh2D {
            width: 4,
            height: 4,
        };
        // 0 -> 15: row first (1,2,3), then column (7,11,15).
        assert_eq!(t.route(0, 15), vec![1, 2, 3, 7, 11, 15]);
    }

    #[test]
    fn ring_route_steps_are_adjacent() {
        let t = Topology::Ring { nodes: 10 };
        let route = t.route(8, 2); // wraps through 9, 0, 1, 2
        assert_eq!(route, vec![9, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        Topology::Ring { nodes: 4 }.distance(0, 4);
    }
}
