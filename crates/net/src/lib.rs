#![warn(missing_docs)]
//! # tcf-net — the distance-aware interconnection network
//!
//! Both the PRAM-NUMA model and its TCF extension place the processor
//! groups and memory modules on a **distance-aware interconnection
//! network**: routing latency is proportional to the distance between the
//! source processor group and the destination memory module, and the
//! network's bandwidth bounds how many references can be in flight per
//! cycle (Forsell & Leppänen, §2.1/§3.1).
//!
//! This crate provides:
//!
//! * [`Topology`] — ring, 2-D mesh and ideal crossbar layouts with their
//!   natural distance metrics and deterministic shortest-path routes,
//! * [`Network`] — a cycle-based router using link reservation: each hop
//!   costs `hop_latency` cycles and each link carries one message per
//!   cycle, so both *distance* (latency ∝ hops) and *congestion*
//!   (serialization on shared links) emerge from the same mechanism,
//! * [`NetStats`] — delivered messages, hop counts and observed queueing,
//!   used by the benches that reproduce the paper's bandwidth discussion.

pub mod router;
pub mod stats;
pub mod topology;

pub use router::{Network, Route};
pub use stats::NetStats;
pub use topology::Topology;
