//! Cycle-based routing with link reservation.
//!
//! The model charges [`Network::hop_latency`] cycles per hop and allows one
//! message to *enter* each directed link per cycle. Distance-proportional
//! latency and congestion-induced queueing both fall out of this single
//! mechanism: an uncontended message from `s` to `d` is delivered after
//! `distance(s, d) × hop_latency` cycles, while messages competing for a
//! link serialize at one per cycle.

use serde::{Deserialize, Serialize};

use crate::stats::NetStats;
use crate::topology::Topology;

/// The interconnection network of one machine.
///
/// Link and module occupancy live in flat vectors indexed by the
/// topology's dense [`link_id`](Topology::link_id)s and node ids — the
/// steady-state routing path performs no hashing and no allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    topology: Topology,
    hop_latency: u64,
    /// Earliest cycle at which each directed link accepts its next
    /// message, indexed by [`Topology::link_id`].
    link_free: Vec<u64>,
    /// Earliest cycle at which each node's memory module accepts its next
    /// reference (modules are pipelined with an initiation interval of
    /// one reference per cycle), indexed by node.
    service_free: Vec<u64>,
    stats: NetStats,
}

/// Longest path a precomputed [`Route`] can hold. Generous for the model's
/// topologies (a 256-node ring has diameter 128, but machines that large
/// are not simulated hop-exact); [`Network::route_to`] declines longer
/// paths rather than truncating them.
const MAX_ROUTE_HOPS: usize = 16;

/// A precomputed unidirectional route: the dense directed-link ids from a
/// source to a destination in traversal order, plus the contention-free
/// one-way latency. Built once per lane run by
/// [`Network::route_to`], then replayed per message by
/// [`Network::send_on`].
#[derive(Debug, Clone, Copy)]
pub struct Route {
    links: [u32; MAX_ROUTE_HOPS],
    hops: usize,
    /// Contention-free one-way latency (distance × hop latency).
    base: u64,
}

impl Route {
    /// Hop count of the route (0 for a same-node pair).
    #[inline]
    pub fn hops(&self) -> usize {
        self.hops
    }
}

impl Network {
    /// Creates a network over `topology` charging `hop_latency` cycles per
    /// hop (must be ≥ 1).
    pub fn new(topology: Topology, hop_latency: u64) -> Network {
        assert!(hop_latency >= 1, "hop latency must be at least one cycle");
        Network {
            topology,
            hop_latency,
            link_free: vec![0; topology.link_count()],
            service_free: vec![0; topology.nodes()],
            stats: NetStats::default(),
        }
    }

    /// Reserves the memory module at `node` for one reference arriving at
    /// `arrive`; returns the cycle its reply is ready. The module accepts
    /// one reference per cycle (pipelined) and serves each in
    /// `service_latency` cycles, so a module hammered by concurrent
    /// references serializes — the congestion that randomized placement
    /// ([`tcf_mem`-style hashing]) exists to avoid.
    ///
    /// [`tcf_mem`-style hashing]: crate
    pub fn service(&mut self, node: usize, arrive: u64, service_latency: u64) -> u64 {
        let slot = &mut self.service_free[node];
        let start = arrive.max(*slot);
        *slot = start + 1;
        start + service_latency
    }

    /// The cycle at which the directed link `from -> to` (a one-hop
    /// neighbour pair) accepts its next message. Observability hook used
    /// by congestion diagnostics and the router conformance tests.
    pub fn link_busy_until(&self, from: usize, to: usize) -> u64 {
        self.link_free[self.topology.link_id(from, to)]
    }

    /// The network's topology.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Cycles per hop.
    #[inline]
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Hop distance between two nodes.
    #[inline]
    pub fn distance(&self, from: usize, to: usize) -> usize {
        self.topology.distance(from, to)
    }

    /// Minimum (contention-free) one-way latency between two nodes.
    #[inline]
    pub fn base_latency(&self, from: usize, to: usize) -> u64 {
        self.distance(from, to) as u64 * self.hop_latency
    }

    /// Routes one message injected at cycle `now`; returns its delivery
    /// cycle. Same-node messages are delivered immediately (the memory
    /// module is co-located with the processor group).
    pub fn send(&mut self, src: usize, dst: usize, now: u64) -> u64 {
        self.stats.messages += 1;
        if src == dst {
            self.stats.local_deliveries += 1;
            return now;
        }
        let mut t = now;
        let mut prev = src;
        while prev != dst {
            let next = self.topology.next_hop(prev, dst);
            self.stats.hops += 1;
            let slot = &mut self.link_free[self.topology.link_id(prev, next)];
            let enter = t.max(*slot);
            *slot = enter + 1;
            t = enter + self.hop_latency;
            prev = next;
        }
        let lower_bound = now + self.base_latency(src, dst);
        let queued = t - lower_bound;
        self.stats.queue_cycles += queued;
        self.stats.max_queue_cycles = self.stats.max_queue_cycles.max(queued);
        self.stats.queue.record(queued);
        t
    }

    /// Routes a batch in order; returns per-message delivery cycles and the
    /// cycle by which all are delivered.
    pub fn send_batch(&mut self, msgs: &[(usize, usize)], now: u64) -> (Vec<u64>, u64) {
        let deliveries: Vec<u64> = msgs.iter().map(|&(s, d)| self.send(s, d, now)).collect();
        let done = deliveries.iter().copied().max().unwrap_or(now);
        (deliveries, done)
    }

    /// Precomputes the deterministic route `src -> dst` for repeated
    /// [`send_on`](Network::send_on) calls over the same pair — the
    /// bulk-multioperation shape, where a whole lane run targets one
    /// module. Returns `None` when the path exceeds the fixed-size handle
    /// (callers fall back to per-message [`send`](Network::send)).
    pub fn route_to(&self, src: usize, dst: usize) -> Option<Route> {
        let mut links = [0u32; MAX_ROUTE_HOPS];
        let mut hops = 0usize;
        let mut prev = src;
        while prev != dst {
            if hops == MAX_ROUTE_HOPS {
                return None;
            }
            let next = self.topology.next_hop(prev, dst);
            links[hops] = self.topology.link_id(prev, next) as u32;
            hops += 1;
            prev = next;
        }
        Some(Route {
            links,
            hops,
            base: self.base_latency(src, dst),
        })
    }

    /// Routes one message along a precomputed [`Route`]: identical link
    /// reservations, delivery cycle, and statistics to
    /// [`send`](Network::send) over the same pair, minus the per-hop
    /// topology arithmetic.
    pub fn send_on(&mut self, route: &Route, now: u64) -> u64 {
        self.stats.messages += 1;
        self.stats.route_sends += 1;
        if route.hops == 0 {
            self.stats.local_deliveries += 1;
            return now;
        }
        self.stats.hops += route.hops;
        let mut t = now;
        for &link in &route.links[..route.hops] {
            let slot = &mut self.link_free[link as usize];
            let enter = t.max(*slot);
            *slot = enter + 1;
            t = enter + self.hop_latency;
        }
        let queued = t - (now + route.base);
        self.stats.queue_cycles += queued;
        self.stats.max_queue_cycles = self.stats.max_queue_cycles.max(queued);
        self.stats.queue.record(queued);
        t
    }

    /// Replays messages `1..=tail` of a same-route round-trip run in
    /// closed form, after the caller has walked message 0 exactly
    /// (fwd [`send_on`](Network::send_on) → [`service`](Network::service)
    /// → rev [`send_on`](Network::send_on)).
    ///
    /// Every directed link and the module are rate-1 FIFO servers, and
    /// the issue cadence `s_k = s0 + ⌊(c + k)/width⌋` never advances
    /// faster than one message per cycle, so message `k`'s whole
    /// trajectory is message 0's shifted by exactly `k` cycles: each
    /// touched resource's next-free slot moves by `tail`, deliveries are
    /// `back0 + k`, and the per-message queueing delays are cadence
    /// ramps (forward leg) or constant (return leg — the module emits
    /// exactly one reply per cycle). Field for field identical to
    /// issuing the `tail` messages one by one, at O(log tail) cost.
    ///
    /// `(arrive0, served0, back0)` is message 0's trajectory as returned
    /// by the three calls above; `s0` is its issue cycle and `c < width`
    /// the number of messages the caller had already issued in cycle
    /// `s0` before it.
    #[allow(clippy::too_many_arguments)]
    pub fn replay_roundtrip_tail(
        &mut self,
        fwd: &Route,
        rev: &Route,
        node: usize,
        tail: u64,
        s0: u64,
        arrive0: u64,
        served0: u64,
        back0: u64,
        c: u64,
        width: u64,
    ) {
        if tail == 0 {
            return;
        }
        // Occupancy: every server's next-free slot advances one cycle per
        // trailing message.
        for &link in fwd.links[..fwd.hops].iter().chain(&rev.links[..rev.hops]) {
            self.link_free[link as usize] += tail;
        }
        self.service_free[node] += tail;
        // Statistics, exactly as per-message `send_on` calls would have
        // accumulated them (the histogram is order-independent, so the
        // interleaving of forward and return samples does not matter).
        self.stats.messages += 2 * tail as usize;
        self.stats.route_sends += 2 * tail as usize;
        if fwd.hops == 0 {
            self.stats.local_deliveries += tail as usize;
        } else {
            self.stats.hops += fwd.hops * tail as usize;
            // queued_k = arrive_k − (s_k + base) ramps with the cadence.
            let q0 = arrive0 - (s0 + fwd.base);
            let (sum, last) = self.stats.queue.record_ramp(q0, c, width, 1, tail + 1);
            self.stats.queue_cycles += sum;
            self.stats.max_queue_cycles = self.stats.max_queue_cycles.max(last);
        }
        if rev.hops == 0 {
            self.stats.local_deliveries += tail as usize;
        } else {
            self.stats.hops += rev.hops * tail as usize;
            let q0 = back0 - (served0 + rev.base);
            let (sum, last) = self.stats.queue.record_ramp(q0, 0, 1, 1, tail + 1);
            self.stats.queue_cycles += sum;
            self.stats.max_queue_cycles = self.stats.max_queue_cycles.max(last);
        }
    }

    /// Traffic statistics since construction or the last [`reset`].
    ///
    /// [`reset`]: Network::reset
    #[inline]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Clears link and module reservations and statistics.
    pub fn reset(&mut self) {
        self.link_free.fill(0);
        self.service_free.fill(0);
        self.stats = NetStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, lat: u64) -> Network {
        Network::new(Topology::Ring { nodes: n }, lat)
    }

    #[test]
    fn uncontended_latency_proportional_to_distance() {
        let mut net = ring(8, 3);
        assert_eq!(net.send(0, 1, 10), 13);
        net.reset();
        assert_eq!(net.send(0, 4, 10), 10 + 4 * 3);
    }

    #[test]
    fn same_node_is_free() {
        let mut net = ring(8, 3);
        assert_eq!(net.send(5, 5, 42), 42);
        assert_eq!(net.stats().local_deliveries, 1);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut net = ring(8, 1);
        // Two messages over the same first link (0 -> 1) at the same cycle.
        let d1 = net.send(0, 2, 0);
        let d2 = net.send(0, 2, 0);
        assert_eq!(d1, 2);
        assert_eq!(d2, 3); // one cycle behind on every link
        assert!(net.stats().queue_cycles > 0);
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut net = ring(8, 1);
        let d1 = net.send(0, 1, 0);
        let d2 = net.send(4, 5, 0);
        assert_eq!(d1, 1);
        assert_eq!(d2, 1);
        assert_eq!(net.stats().queue_cycles, 0);
    }

    #[test]
    fn crossbar_serializes_at_destination_port() {
        let mut net = Network::new(Topology::Crossbar { nodes: 8 }, 1);
        // All nodes hammer node 0: the (n, 0) links are distinct, so an
        // ideal crossbar delivers them all in one cycle.
        let msgs: Vec<(usize, usize)> = (1..8).map(|s| (s, 0)).collect();
        let (_, done) = net.send_batch(&msgs, 0);
        assert_eq!(done, 1);
        // But one node sending many messages serializes on its own link.
        net.reset();
        let msgs = vec![(3, 0); 5];
        let (deliveries, done) = net.send_batch(&msgs, 0);
        assert_eq!(deliveries, vec![1, 2, 3, 4, 5]);
        assert_eq!(done, 5);
    }

    #[test]
    fn batch_reports_completion() {
        let mut net = ring(6, 2);
        let (deliveries, done) = net.send_batch(&[(0, 1), (0, 2), (3, 3)], 100);
        assert_eq!(deliveries.len(), 3);
        assert_eq!(done, *deliveries.iter().max().unwrap());
    }

    #[test]
    fn reset_clears_reservations() {
        let mut net = ring(8, 1);
        net.send(0, 2, 0);
        net.reset();
        assert_eq!(net.send(0, 2, 0), 2);
        assert_eq!(net.stats().messages, 1);
    }

    #[test]
    fn module_service_serializes_one_per_cycle() {
        let mut net = ring(4, 1);
        // Three references arriving at the same module in the same cycle:
        // service starts pipeline at one per cycle.
        assert_eq!(net.service(0, 10, 2), 12);
        assert_eq!(net.service(0, 10, 2), 13);
        assert_eq!(net.service(0, 10, 2), 14);
        // A later arrival at an idle moment starts immediately.
        assert_eq!(net.service(0, 100, 2), 102);
        // Another module is independent.
        assert_eq!(net.service(1, 10, 2), 12);
    }

    #[test]
    fn reset_clears_service_reservations() {
        let mut net = ring(4, 1);
        net.service(0, 0, 1);
        net.reset();
        assert_eq!(net.service(0, 0, 1), 1);
    }

    /// The pre-flat-vector router, verbatim: link and service occupancy
    /// in hash maps keyed by `(prev, next)` pairs and node ids. Kept as
    /// the reference model for the dense-id rewrite.
    struct HashMapRouter {
        topology: Topology,
        hop_latency: u64,
        link_free: std::collections::HashMap<(usize, usize), u64>,
        service_free: std::collections::HashMap<usize, u64>,
    }

    impl HashMapRouter {
        fn new(topology: Topology, hop_latency: u64) -> HashMapRouter {
            HashMapRouter {
                topology,
                hop_latency,
                link_free: Default::default(),
                service_free: Default::default(),
            }
        }

        fn send(&mut self, src: usize, dst: usize, now: u64) -> u64 {
            if src == dst {
                return now;
            }
            let route = self.topology.route(src, dst);
            let mut t = now;
            let mut prev = src;
            for next in route {
                let slot = self.link_free.entry((prev, next)).or_insert(0);
                let enter = t.max(*slot);
                *slot = enter + 1;
                t = enter + self.hop_latency;
                prev = next;
            }
            t
        }

        fn service(&mut self, node: usize, arrive: u64, service_latency: u64) -> u64 {
            let slot = self.service_free.entry(node).or_insert(0);
            let start = arrive.max(*slot);
            *slot = start + 1;
            start + service_latency
        }
    }

    #[test]
    fn flat_occupancy_matches_hashmap_reference_trace() {
        let topologies = [
            Topology::Ring { nodes: 8 },
            Topology::Mesh2D {
                width: 4,
                height: 4,
            },
            Topology::Crossbar { nodes: 8 },
        ];
        for topology in topologies {
            let n = topology.nodes();
            let mut net = Network::new(topology, 3);
            let mut reference = HashMapRouter::new(topology, 3);
            // A recorded trace of pseudo-random messages and module
            // reservations (deterministic LCG so the trace is stable).
            let mut state = 0x2545F4914F6CDD1Du64;
            let mut rng = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for i in 0..500 {
                let src = rng() % n;
                let dst = rng() % n;
                let now = (i / 3) as u64;
                assert_eq!(
                    net.send(src, dst, now),
                    reference.send(src, dst, now),
                    "{topology:?}: delivery diverged for {src}->{dst} @ {now}"
                );
                if i % 5 == 0 {
                    let node = rng() % n;
                    assert_eq!(
                        net.service(node, now, 2),
                        reference.service(node, now, 2),
                        "{topology:?}: service diverged at node {node}"
                    );
                }
            }
            // Every link the reference trace touched shows the same
            // per-link busy-until time in the flat table.
            for (&(from, to), &busy) in &reference.link_free {
                assert_eq!(
                    net.link_busy_until(from, to),
                    busy,
                    "{topology:?}: busy-until diverged on link {from}->{to}"
                );
            }
        }
    }

    #[test]
    fn send_on_matches_send_exactly() {
        let topologies = [
            Topology::Ring { nodes: 8 },
            Topology::Mesh2D {
                width: 4,
                height: 4,
            },
            Topology::Crossbar { nodes: 8 },
        ];
        for topology in topologies {
            let n = topology.nodes();
            let mut by_pair = Network::new(topology, 3);
            let mut by_route = Network::new(topology, 3);
            for src in 0..n {
                for dst in 0..n {
                    let route = by_route.route_to(src, dst).expect("short path");
                    assert_eq!(route.hops(), topology.distance(src, dst));
                    // Repeated messages exercise both the uncontended and
                    // the link-queued cases.
                    for i in 0..4u64 {
                        assert_eq!(
                            by_pair.send(src, dst, i / 2),
                            by_route.send_on(&route, i / 2),
                            "{topology:?}: delivery diverged for {src}->{dst}"
                        );
                    }
                }
            }
            // `send_on` additionally counts its route-handle reuse; every
            // timing/congestion statistic must still agree exactly.
            let mut route_stats = by_route.stats().clone();
            assert_eq!(route_stats.route_sends, n * n * 4);
            route_stats.route_sends = 0;
            assert_eq!(by_pair.stats(), &route_stats);
            for from in 0..n {
                for to in 0..n {
                    if topology.distance(from, to) == 1 {
                        assert_eq!(
                            by_pair.link_busy_until(from, to),
                            by_route.link_busy_until(from, to)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn replay_roundtrip_tail_matches_per_message_loop() {
        let topologies = [
            Topology::Ring { nodes: 8 },
            Topology::Mesh2D {
                width: 4,
                height: 4,
            },
            Topology::Crossbar { nodes: 8 },
        ];
        for topology in topologies {
            // (group, node) pairs: remote, fully local, and reversed-remote.
            for &(group, node) in &[(0usize, 5usize), (3, 3), (2, 0)] {
                for &width in &[1usize, 4] {
                    for initial_issued in [0, width - 1] {
                        for &count in &[1u64, 2, 7, 64] {
                            for &warm in &[false, true] {
                                let mut looped = Network::new(topology, 2);
                                let mut bulk = Network::new(topology, 2);
                                if warm {
                                    // Pre-load links and the module so the
                                    // run starts against congestion.
                                    for i in 0..6 {
                                        looped.send(i % 8, node, 0);
                                        bulk.send(i % 8, node, 0);
                                        looped.service(node, 0, 3);
                                        bulk.service(node, 0, 3);
                                    }
                                }
                                let fwd = looped.route_to(group, node).unwrap();
                                let rev = looped.route_to(node, group).unwrap();
                                // Per-message reference, pipeline cadence.
                                let (mut t, mut issued) = (10u64, initial_issued);
                                let mut last_back = 0u64;
                                for _ in 0..count {
                                    if issued >= width {
                                        t += 1;
                                        issued = 0;
                                    }
                                    issued += 1;
                                    let arrive = looped.send_on(&fwd, t);
                                    let served = looped.service(node, arrive, 3);
                                    last_back = looped.send_on(&rev, served);
                                }
                                // Closed form: message 0 exact, tail bulk.
                                let (mut t, mut issued) = (10u64, initial_issued);
                                if issued >= width {
                                    t += 1;
                                    issued = 0;
                                }
                                issued += 1;
                                let s0 = t;
                                let arrive0 = bulk.send_on(&fwd, s0);
                                let served0 = bulk.service(node, arrive0, 3);
                                let back0 = bulk.send_on(&rev, served0);
                                bulk.replay_roundtrip_tail(
                                    &fwd,
                                    &rev,
                                    node,
                                    count - 1,
                                    s0,
                                    arrive0,
                                    served0,
                                    back0,
                                    (issued - 1) as u64,
                                    width as u64,
                                );
                                let ctx = format!(
                                    "{topology:?} {group}->{node} width {width} \
                                     phase {initial_issued} count {count} warm {warm}"
                                );
                                assert_eq!(back0 + (count - 1), last_back, "{ctx}: delivery");
                                assert_eq!(looped.stats(), bulk.stats(), "{ctx}: stats");
                                assert_eq!(looped.link_free, bulk.link_free, "{ctx}: links");
                                assert_eq!(
                                    looped.service_free, bulk.service_free,
                                    "{ctx}: modules"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn route_to_declines_paths_longer_than_the_handle() {
        let net = Network::new(Topology::Ring { nodes: 64 }, 1);
        // Diameter 32 exceeds the 16-hop handle.
        assert!(net.route_to(0, 32).is_none());
        assert!(net.route_to(0, 16).is_some());
    }

    #[test]
    fn mean_hops_tracks_topology() {
        let mut net = Network::new(
            Topology::Mesh2D {
                width: 3,
                height: 3,
            },
            1,
        );
        net.send(0, 8, 0); // distance 4
        net.send(0, 1, 0); // distance 1
        assert_eq!(net.stats().hops, 5);
        assert!((net.stats().mean_hops() - 2.5).abs() < 1e-9);
    }
}
