//! §4 programming-example reproductions (P1–P8).
//!
//! Each experiment runs the paper's paired constructs — the thread-model
//! form with loops/guards/thread arithmetic, and the TCF form with
//! thickness statements — verifies both produce identical results, and
//! reports steps, cycles, issued operations and utilization so the
//! paper's qualitative claims become measurable shapes.

use tcf_core::{Allocation, TcfMachine, Variant};
use tcf_isa::word::Word;
use tcf_machine::MachineConfig;
use tcf_pram::PramMachine;

use crate::report::{ratio, TextTable};
use crate::workloads::{self, A_BASE, C_BASE};

const BUDGET: u64 = 5_000_000;

/// Summary of one run for the result tables.
struct Row {
    label: String,
    steps: u64,
    cycles: u64,
    issued: u64,
    utilization: f64,
}

impl Row {
    fn cells(&self, base_cycles: Option<u64>) -> Vec<String> {
        vec![
            self.label.clone(),
            self.steps.to_string(),
            self.cycles.to_string(),
            self.issued.to_string(),
            format!("{:.2}", self.utilization),
            match base_cycles {
                Some(b) => ratio(b as f64, self.cycles as f64),
                None => "1.00x".to_string(),
            },
        ]
    }
}

fn header() -> Vec<&'static str> {
    vec![
        "version",
        "steps",
        "cycles",
        "issued ops",
        "util",
        "speedup vs baseline",
    ]
}

fn run_tcf(
    config: &MachineConfig,
    variant: Variant,
    program: tcf_isa::program::Program,
    label: String,
    init: impl FnOnce(&mut TcfMachine),
    check: impl FnOnce(&TcfMachine),
) -> Row {
    let mut m = TcfMachine::new(config.clone(), variant, program);
    init(&mut m);
    let s = m.run(BUDGET).unwrap();
    check(&m);
    Row {
        label,
        steps: s.steps,
        cycles: s.cycles,
        issued: s.machine.issued(),
        utilization: s.machine.utilization(),
    }
}

/// P1: array add with more data elements than threads — the loop version
/// on the thread machine vs `#size; c.=a.+b.;` on the extended model.
pub fn p1(config: &MachineConfig) -> TextTable {
    let mut t = TextTable::new(header());
    for mult in [1usize, 4, 16] {
        let size = mult * config.total_threads();
        let base = run_tcf(
            config,
            Variant::SingleOperation,
            workloads::loop_vector_add(size),
            format!("P1 size={size} loop (Single-op)"),
            |m| workloads::init_arrays_tcf(m, size),
            |m| workloads::check_vector_add(|a| m.peek(a).unwrap(), size),
        );
        let tcf = run_tcf(
            config,
            Variant::SingleInstruction,
            workloads::tcf_vector_add(size),
            format!("P1 size={size} #size (Single instr)"),
            |m| workloads::init_arrays_tcf(m, size),
            |m| workloads::check_vector_add(|a| m.peek(a).unwrap(), size),
        );
        let bc = base.cycles;
        t.row(base.cells(None));
        t.row(tcf.cells(Some(bc)));
    }
    t
}

/// P2: fewer data elements than threads — guard version vs thickness
/// version.
pub fn p2(config: &MachineConfig) -> TextTable {
    let mut t = TextTable::new(header());
    for size in [4usize, 16, config.total_threads() / 2] {
        let base = run_tcf(
            config,
            Variant::SingleOperation,
            workloads::guard_vector_add(size),
            format!("P2 size={size} guard (Single-op)"),
            |m| workloads::init_arrays_tcf(m, size),
            |m| workloads::check_vector_add(|a| m.peek(a).unwrap(), size),
        );
        let tcf = run_tcf(
            config,
            Variant::SingleInstruction,
            workloads::tcf_vector_add(size),
            format!("P2 size={size} #size (Single instr)"),
            |m| workloads::init_arrays_tcf(m, size),
            |m| workloads::check_vector_add(|a| m.peek(a).unwrap(), size),
        );
        let bc = base.cycles;
        t.row(base.cells(None));
        t.row(tcf.cells(Some(bc)));
    }
    t
}

/// P3: a sequential section — plain single-thread execution on the ESM
/// (1/T_p utilization) vs NUMA bunches (`numa`/`#1/T`).
pub fn p3(config: &MachineConfig) -> TextTable {
    let iters = 300;
    let mut t = TextTable::new(header());
    let base = run_tcf(
        config,
        Variant::SingleOperation,
        workloads::plain_seq(iters),
        format!("P3 {iters} iters single thread (Single-op)"),
        |_| {},
        |m| assert_eq!(m.peek(70).unwrap(), iters as Word),
    );
    let bc = base.cycles;
    t.row(base.cells(None));
    for bunch in [4usize, 16] {
        let tcf = run_tcf(
            config,
            Variant::SingleInstruction,
            workloads::tcf_numa_seq(iters, bunch),
            format!("P3 {iters} iters #1/{bunch} NUMA (Single instr)"),
            |_| {},
            |m| assert_eq!(m.peek(70).unwrap(), iters as Word),
        );
        t.row(tcf.cells(Some(bc)));
    }
    t
}

/// P4: the one-way conditional — guard on the thread machine vs
/// `#size/2: stmt` on the extended model.
pub fn p4(config: &MachineConfig) -> TextTable {
    let size = config.total_threads();
    let half = size / 2;
    let mut t = TextTable::new(header());
    let base = run_tcf(
        config,
        Variant::SingleOperation,
        workloads::guard_vector_add(half),
        format!("P4 guard tid<{half} (Single-op)"),
        |m| workloads::init_arrays_tcf(m, size),
        |m| workloads::check_vector_add(|a| m.peek(a).unwrap(), half),
    );
    let tcf = run_tcf(
        config,
        Variant::SingleInstruction,
        workloads::tcf_vector_add(half),
        "P4 #size/2 (Single instr)".to_string(),
        |m| workloads::init_arrays_tcf(m, size),
        |m| workloads::check_vector_add(|a| m.peek(a).unwrap(), half),
    );
    let bc = base.cycles;
    t.row(base.cells(None));
    t.row(tcf.cells(Some(bc)));
    t
}

/// P5: the two-way conditional — `parallel { #n/2 …; #n/2 …; }` on the
/// extended model vs two sequential masked passes on the Fixed-thickness
/// (SIMD) variant.
pub fn p5(config: &MachineConfig) -> TextTable {
    let size = config.threads_per_group; // the SIMD width
    let check = |m: &TcfMachine| {
        for i in 0..size / 2 {
            assert_eq!(m.peek(C_BASE + i).unwrap(), 3 * i as Word);
        }
        for i in size / 2..size {
            assert_eq!(m.peek(C_BASE + i).unwrap(), 0);
        }
    };
    let mut t = TextTable::new(header());
    let simd = run_tcf(
        config,
        Variant::FixedThickness { width: size },
        workloads::masked_two_way(size),
        format!("P5 masked passes (Fixed thickness {size})"),
        |m| workloads::init_arrays_tcf(m, size),
        check,
    );
    let tcf = run_tcf(
        config,
        Variant::SingleInstruction,
        workloads::tcf_two_way(size),
        "P5 parallel{} (Single instr)".to_string(),
        |m| workloads::init_arrays_tcf(m, size),
        check,
    );
    let bc = simd.cycles;
    t.row(simd.cells(None));
    t.row(tcf.cells(Some(bc)));
    t
}

/// P6: multioperations — the multiprefix loop on the thread machine vs
/// the thick `prefix()` on the extended model.
pub fn p6(config: &MachineConfig) -> TextTable {
    let mut t = TextTable::new(header());
    for mult in [1usize, 8] {
        let size = mult * config.total_threads();
        let expected_sum = (size * (size + 1) / 2) as Word;
        let base = run_tcf(
            config,
            Variant::SingleOperation,
            workloads::loop_prefix(size),
            format!("P6 size={size} prefix loop (Single-op)"),
            |_| {},
            |m| assert_eq!(m.peek(64).unwrap(), expected_sum),
        );
        let tcf = run_tcf(
            config,
            Variant::SingleInstruction,
            workloads::tcf_prefix(size),
            format!("P6 size={size} thick prefix (Single instr)"),
            |_| {},
            |m| assert_eq!(m.peek(64).unwrap(), expected_sum),
        );
        let bc = base.cycles;
        t.row(base.cells(None));
        t.row(tcf.cells(Some(bc)));
    }
    t
}

/// P7: the dependent loop (log-step scan) — guarded thread version,
/// `fork` version on Multi-instruction, and the thickness version.
pub fn p7(config: &MachineConfig) -> TextTable {
    let size = config.total_threads();
    let init = |m: &mut TcfMachine| {
        for j in 0..size {
            m.poke(A_BASE + j, 1).unwrap();
        }
    };
    let check = move |m: &TcfMachine| {
        for j in 0..size {
            assert_eq!(m.peek(A_BASE + j).unwrap(), j as Word + 1, "scan[{j}]");
        }
    };
    let mut t = TextTable::new(header());
    let base = run_tcf(
        config,
        Variant::SingleOperation,
        workloads::loop_scan(size),
        format!("P7 size={size} masked loop (Single-op)"),
        init,
        check,
    );
    let fork = run_tcf(
        config,
        Variant::MultiInstruction,
        workloads::fork_scan(size),
        format!("P7 size={size} fork per level (Multi-instr)"),
        init,
        check,
    );
    let tcf = run_tcf(
        config,
        Variant::SingleInstruction,
        workloads::tcf_scan(size),
        format!("P7 size={size} #size-i (Single instr)"),
        init,
        check,
    );
    let bc = base.cycles;
    t.row(base.cells(None));
    t.row(fork.cells(Some(bc)));
    t.row(tcf.cells(Some(bc)));
    t
}

/// P8: multitasking and allocation — tasks as TCFs (free switching) vs
/// the ESM software context switch, and horizontal vs vertical flow
/// allocation (§5).
pub fn p8(config: &MachineConfig) -> TextTable {
    let mut t = TextTable::new(vec!["scenario", "cycles", "overhead cycles", "note"]);

    // Tasks as TCFs, resident.
    let ntasks = 8;
    let program = workloads::task_program(100);
    let entry = program.label("task").unwrap();
    let mut m = TcfMachine::new(config.clone(), Variant::SingleInstruction, program);
    for _ in 0..ntasks {
        m.spawn_task(entry, 1).unwrap();
    }
    let s = m.run(BUDGET).unwrap();
    t.row(vec![
        format!("P8 {ntasks} tasks as TCFs (Single instr)"),
        s.cycles.to_string(),
        s.machine.overhead_cycles.to_string(),
        "switching is free while resident".to_string(),
    ]);

    // The ESM software context switch for comparison: one full
    // save+restore of every thread context per switch.
    let mut m = PramMachine::new(
        config.clone(),
        workloads::context_switch_program(config.regs_per_thread, config.shared_size / 2),
    );
    let s = m.run(BUDGET).unwrap();
    t.row(vec![
        "P8 one ESM context switch (save+restore)".to_string(),
        s.cycles.to_string(),
        "-".to_string(),
        format!("O(Tp) per switch; x{ntasks} switches would dominate"),
    ]);

    // Horizontal vs vertical allocation of one thick flow.
    let size = 4 * config.total_threads();
    for (alloc, name) in [
        (Allocation::Horizontal, "horizontal (Tapp/P per group)"),
        (Allocation::Vertical, "vertical (whole flow on one group)"),
    ] {
        let mut m = workloads::tcf_machine_alloc(
            config,
            Variant::SingleInstruction,
            workloads::tcf_vector_add(size),
            alloc,
        );
        workloads::init_arrays_tcf(&mut m, size);
        let s = m.run(BUDGET).unwrap();
        workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
        t.row(vec![
            format!("P8 thick add size={size}, {name}"),
            s.cycles.to_string(),
            s.machine.overhead_cycles.to_string(),
            String::new(),
        ]);
    }
    t
}

/// The full §4 report.
pub fn report(config: &MachineConfig) -> String {
    let mut out = String::new();
    let sections: [(&str, TextTable); 8] = [
        ("P1: array add, size > threads (loop vs #size)", p1(config)),
        ("P2: array add, size < threads (guard vs #size)", p2(config)),
        (
            "P3: sequential section (single thread vs NUMA bunch)",
            p3(config),
        ),
        (
            "P4: one-way conditional (guard vs scoped thickness)",
            p4(config),
        ),
        (
            "P5: two-way conditional (parallel{} vs masked SIMD)",
            p5(config),
        ),
        ("P6: multiprefix (loop vs thick prefix)", p6(config)),
        (
            "P7: dependent loop scan (loop vs fork vs thickness)",
            p7(config),
        ),
        ("P8: multitasking and flow allocation", p8(config)),
    ];
    for (title, table) in sections {
        out.push_str(&format!("== {title} ==\n"));
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::small()
    }

    fn cycles_col(t: &TextTable, row: usize) -> u64 {
        t.cell(row, 2).parse().unwrap()
    }

    #[test]
    fn p1_tcf_wins_at_scale() {
        let t = p1(&cfg());
        // Rows alternate baseline/TCF per size; TCF must always be the
        // faster of each pair.
        for pair in 0..3 {
            let base = cycles_col(&t, 2 * pair);
            let tcf = cycles_col(&t, 2 * pair + 1);
            assert!(tcf < base, "TCF slower than loop baseline:\n{}", t.render());
        }
    }

    #[test]
    fn p3_numa_bunch_accelerates_sequential() {
        let t = p3(&cfg());
        let plain = cycles_col(&t, 0);
        let numa4 = cycles_col(&t, 1);
        let numa16 = cycles_col(&t, 2);
        // NUMA 16 must beat NUMA 4 must beat plain sequential.
        assert!(numa4 < plain, "{}", t.render());
        assert!(numa16 < numa4, "{}", t.render());
    }

    #[test]
    fn p5_control_parallelism_beats_sequential_masks() {
        let t = p5(&cfg());
        let simd = cycles_col(&t, 0);
        let tcf = cycles_col(&t, 1);
        assert!(tcf <= simd, "parallel{{}} not faster:\n{}", t.render());
    }

    #[test]
    fn p7_all_versions_verified() {
        // The run_tcf checks inside p7 assert correctness of all three
        // models' scans; reaching here means they agreed.
        let t = p7(&cfg());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn p8_has_four_scenarios() {
        let t = p8(&cfg());
        assert_eq!(t.len(), 4);
    }
}
