//! Figure reproductions.
//!
//! Figures 1, 2 and 5 are machine-organisation schematics — reproduced as
//! structural inventories of the configured machine. Figures 3 and 4 show
//! TCF thickness evolving over a block-structured program — reproduced as
//! thickness-per-step profiles. Figure 6 shows latency hiding in the
//! multithreaded PRAM mode vs a NUMA bunch; Figures 7–12 show one mixed
//! workload scheduled under each variant; Figure 13 shows the CESM
//! pipeline fed from the TCF storage buffer — all reproduced as
//! single-processor-view Gantt strips plus summary numbers.

use tcf_core::{TcfMachine, Variant};
use tcf_isa::asm::assemble;
use tcf_machine::MachineConfig;
use tcf_mem::ModuleMap;
use tcf_net::Topology;
use tcf_pram::PramMachine;

use crate::report::TextTable;
use crate::workloads;

/// A one-group machine for the single-processor-view figures.
pub fn single_group_config() -> MachineConfig {
    let mut c = MachineConfig::small();
    c.groups = 1;
    c.topology = Topology::Crossbar { nodes: 1 };
    c.module_map = ModuleMap::Interleaved;
    c
}

/// Figure 1: the ESM architecture (P multithreaded processors, shared
/// memory over a high-bandwidth network).
pub fn fig1(config: &MachineConfig) -> String {
    let mut out = String::from(
        "== Figure 1: emulated shared memory (ESM) architecture ==\n\
         (the PRAM-NUMA organisation below, minus the NUMA machinery:\n\
          no local memory blocks are used and no bunching is configured)\n\n",
    );
    out.push_str(&config.inventory(false));
    out
}

/// Figure 2: the PRAM-NUMA machine organisation.
pub fn fig2(config: &MachineConfig) -> String {
    let mut out = String::from("== Figure 2: PRAM-NUMA machine (baseline, tcf-pram) ==\n\n");
    out.push_str(&config.inventory(false));
    out
}

/// Figure 5: the extended PRAM-NUMA (TCF) machine organisation.
pub fn fig5(config: &MachineConfig) -> String {
    let mut out =
        String::from("== Figure 5: extended PRAM-NUMA machine (TCF processors, tcf-core) ==\n\n");
    out.push_str(&config.inventory(true));
    out
}

/// Renders a thickness-per-step profile by stepping `m` to completion.
fn thickness_profile(mut m: TcfMachine, max_steps: usize) -> String {
    let mut out = String::new();
    out.push_str("step  thickness profile (sum over running flows)\n");
    for step in 0..max_steps {
        let t = m.running_thickness();
        out.push_str(&format!(
            "{step:>4}  {:<3} |{}|\n",
            t,
            "#".repeat(t.min(72))
        ));
        match m.step() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                out.push_str(&format!("fault: {e}\n"));
                break;
            }
        }
    }
    out
}

/// Figure 3: executing a block-structured functionality with TCFs —
/// thickness 23 block, thickness 15 block with a branching statement,
/// parallel branches of thickness 12 and 3, then a block of thickness 8.
pub fn fig3() -> String {
    let src = "shared int sink[64] @ 9000;
        void main() {
            #23;
            sink[.] = . + 1;          // block of thickness 23
            sink[.] = sink[.] * 2;
            #15;
            sink[.] = sink[.] + 3;    // block of thickness 15
            parallel {
                #12: { sink[.] = 1; sink[. + 12] = 2; }
                #3:  { sink[. + 40] = 3; }
            }
            #8;
            sink[.] = 4;              // block of thickness 8
        }";
    let program = tcf_lang::compile(src).expect("fig3 program compiles");
    let m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);
    let mut out = String::from(
        "== Figure 3: executing functionality with TCFs (thickness 23 -> 15 -> 12||3 -> 8) ==\n\n",
    );
    out.push_str(&thickness_profile(m, 64));
    out
}

/// Figure 4: execution of a single TCF that changes thickness.
pub fn fig4() -> String {
    let src = "shared int sink[64] @ 9000;
        void main() {
            #4;
            sink[.] = 1;
            #12;
            sink[.] = 2;
            #6;
            sink[.] = 3;
            #1;
            sink[0] = 4;
        }";
    let program = tcf_lang::compile(src).expect("fig4 program compiles");
    let m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);
    let mut out = String::from("== Figure 4: a TCF changing thickness (4 -> 12 -> 6 -> 1) ==\n\n");
    out.push_str(&thickness_profile(m, 32));
    out
}

/// Figure 6: latency hiding — interleaved multithreaded PRAM mode vs a
/// NUMA bunch, single-processor view.
pub fn fig6() -> String {
    let config = single_group_config();
    let mut out = String::from(
        "== Figure 6: latency hiding (PRAM mode slot rotation vs NUMA bunch) ==\n\n\
         legend: # compute, M shared memory, L local memory, + flow mgmt, . bubble\n\n",
    );

    // (a) PRAM mode: every thread slot issues a shared-memory reference;
    // the rotation hides the round trip.
    let spmd = assemble(
        "main:
            mfs r1, gid
            ldi r2, 512
            add r2, r2, r1
            ld r3, [r2+0]
            add r3, r3, 1
            st r3, [r2+0]
            halt
        ",
    )
    .unwrap();
    let mut m = PramMachine::new(config.clone(), spmd);
    m.set_tracing(true);
    m.run(100).unwrap();
    out.push_str("(a) PRAM mode, 16 threads, shared-memory traffic:\n");
    out.push_str(&m.trace().gantt(0));
    out.push_str(&format!(
        "    utilization {:.2}\n\n",
        m.stats().utilization()
    ));

    // (b) NUMA bunch: 4 threads execute one sequential stream against the
    // local memory.
    let numa = assemble(
        "main:
            numa 16
            ldi r2, 8
            stl r2, [r0+0]
            ldl r3, [r0+0]
            add r3, r3, 1
            stl r3, [r0+0]
            ldl r4, [r0+0]
            add r4, r4, r3
            endnuma
            halt
        ",
    )
    .unwrap();
    let mut m = PramMachine::new(config, numa);
    m.set_tracing(true);
    m.run(100).unwrap();
    out.push_str("(b) NUMA bunch of 16, sequential stream on local memory:\n");
    out.push_str(&m.trace().gantt(0));
    out.push_str(&format!("    utilization {:.2}\n", m.stats().utilization()));
    out
}

/// The mixed workload of the variant figures: four tasks of thickness
/// 12, 3, 1 and 8 executing a few thick instructions each.
fn mixed_tasks(m: &mut TcfMachine, entry: usize) {
    for t in [12usize, 3, 1, 8] {
        m.spawn_task(entry, t).expect("variant supports tasks");
    }
}

const MIXED_SRC: &str = "main:
        halt
    task:
        mfs r1, tid
        add r2, r1, 1
        add r2, r2, r2
        add r2, r2, r1
        halt
    ";

fn variant_figure(title: &str, variant: Variant, balanced_note: &str) -> String {
    let program = assemble(MIXED_SRC).unwrap();
    let entry = program.label("task").unwrap();
    let mut m = TcfMachine::new(single_group_config(), variant, program);
    m.set_tracing(true);
    mixed_tasks(&mut m, entry);
    let s = m.run(10_000).unwrap();
    let mut out = format!("== {title} ==\n{balanced_note}\n");
    out.push_str(&m.trace().gantt(0));
    out.push_str(&format!(
        "steps {}, cycles {}, issued {}, utilization {:.2}\n",
        s.steps,
        s.cycles,
        s.machine.issued(),
        s.machine.utilization()
    ));
    out
}

/// Figure 7: the Single-instruction variant — every flow executes one
/// whole TCF instruction per step; thick flows stretch the step for thin
/// co-resident flows.
pub fn fig7() -> String {
    variant_figure(
        "Figure 7: Single instruction variant (flows of thickness 12, 3, 1, 8 on one group)",
        Variant::SingleInstruction,
        "(one TCF instruction per flow per step; the 12-thick flow dominates step length)\n",
    )
}

/// Figure 8: the Balanced variant — at most `b` operations per step, with
/// the next-operation resume pointer.
pub fn fig8() -> String {
    variant_figure(
        "Figure 8: Balanced variant (same flows, bound b = 4)",
        Variant::Balanced { bound: 4 },
        "(at most 4 operations of a TCF instruction per step; thick instructions span steps)\n",
    )
}

/// Figure 9: the Multi-instruction (XMT-like) variant.
pub fn fig9() -> String {
    let program = assemble(
        "main:
            spawn 8, body
            halt
        body:
            mfs r1, tid
            add r2, r1, 1
            add r2, r2, r2
            add r2, r2, r1
            sjoin
        ",
    )
    .unwrap();
    let mut m = TcfMachine::new(single_group_config(), Variant::MultiInstruction, program);
    m.set_tracing(true);
    let s = m.run(10_000).unwrap();
    let mut out = String::from(
        "== Figure 9: Multi-instruction variant (XMT): spawn 8 asynchronous threads ==\n\
         (threads run from creation to termination; no lockstep; sync only at sjoin)\n",
    );
    out.push_str(&m.trace().gantt(0));
    out.push_str(&format!(
        "steps {}, cycles {}, issued {}\n",
        s.steps,
        s.cycles,
        s.machine.issued()
    ));
    out
}

/// Figure 10: the Single-operation (interleaved ESM) variant with low
/// TLP: dead thread slots burn issue cycles.
pub fn fig10() -> String {
    let program = assemble(
        "main:
            mfs r1, gid
            slt r2, r1, 4
            bnez r2, work
            halt
        work:
            add r3, r1, 1
            add r3, r3, r3
            add r3, r3, r1
            add r3, r3, 7
            halt
        ",
    )
    .unwrap();
    let mut m = TcfMachine::new(single_group_config(), Variant::SingleOperation, program);
    m.set_tracing(true);
    let s = m.run(10_000).unwrap();
    let mut out = String::from(
        "== Figure 10: Single-operation variant (ESM): 4 of 16 threads live ==\n\
         (the fixed thread rotation spends slots on halted threads: the low-TLP problem)\n",
    );
    out.push_str(&m.trace().gantt(0));
    out.push_str(&format!(
        "steps {}, cycles {}, utilization {:.2}\n",
        s.steps,
        s.cycles,
        s.machine.utilization()
    ));
    out
}

/// Figure 11: the Configurable single operation (original PRAM-NUMA)
/// variant: the same low-TLP section recovered by a NUMA bunch.
pub fn fig11() -> String {
    let program = assemble(
        "main:
            numa 16
            ldi r3, 0
            add r3, r3, 1
            add r3, r3, r3
            add r3, r3, 7
            add r3, r3, 1
            add r3, r3, r3
            add r3, r3, 7
            endnuma
            halt
        ",
    )
    .unwrap();
    let mut m = TcfMachine::new(
        single_group_config(),
        Variant::ConfigurableSingleOperation,
        program,
    );
    m.set_tracing(true);
    let s = m.run(10_000).unwrap();
    let mut out = String::from(
        "== Figure 11: Configurable single operation (PRAM-NUMA): 16-thread NUMA bunch ==\n\
         (the bunch executes 16 consecutive instructions per step like one fast processor)\n",
    );
    out.push_str(&m.trace().gantt(0));
    out.push_str(&format!(
        "steps {}, cycles {}, utilization {:.2}\n",
        s.steps,
        s.cycles,
        s.machine.utilization()
    ));
    out
}

/// Figure 12: the Fixed-thickness (vector/SIMD) variant: masked two-way
/// conditional executed as two sequential passes.
pub fn fig12() -> String {
    let program = workloads::masked_two_way(16);
    let mut m = TcfMachine::new(
        single_group_config(),
        Variant::FixedThickness { width: 16 },
        program,
    );
    workloads::init_arrays_tcf(&mut m, 16);
    m.set_tracing(true);
    let s = m.run(10_000).unwrap();
    let mut out = String::from(
        "== Figure 12: Fixed thickness variant (SIMD width 16): masked two-way conditional ==\n\
         (no control parallelism: both paths execute sequentially under masks)\n",
    );
    out.push_str(&m.trace().gantt(0));
    out.push_str(&format!("steps {}, cycles {}\n", s.steps, s.cycles));
    out
}

/// Figure 13: the CESM pipeline fed from the TCF storage buffer —
/// resident flows switch for free; over-capacity working sets pay the
/// reload, shown as a buffer-size sweep.
pub fn fig13() -> String {
    let mut out = String::from(
        "== Figure 13: CESM processor with TCF storage buffer ==\n\n\
         (a) 4 resident tasks cycling through the pipeline (buffer 16, no overhead):\n",
    );
    let program = workloads::task_program(6);
    let entry = program.label("task").unwrap();
    let mut m = TcfMachine::new(
        single_group_config(),
        Variant::SingleInstruction,
        program.clone(),
    );
    m.set_tracing(true);
    for _ in 0..4 {
        m.spawn_task(entry, 1).unwrap();
    }
    m.run(10_000).unwrap();
    out.push_str(&m.trace().gantt(0));

    out.push_str("\n(b) TCF buffer capacity sweep, 16 tasks of 40 iterations each:\n");
    let mut t = TextTable::new(vec![
        "buffer slots",
        "switches",
        "misses",
        "overhead cycles",
        "total cycles",
    ]);
    for slots in [1usize, 2, 4, 8, 16, 32] {
        let mut config = single_group_config();
        config.tcf_buffer_slots = slots;
        let mut m = TcfMachine::new(config, Variant::SingleInstruction, program.clone());
        for _ in 0..16 {
            m.spawn_task(entry, 1).unwrap();
        }
        let s = m.run(100_000).unwrap();
        let switches: u64 = m.buffers().iter().map(|b| b.switches).sum();
        let misses: u64 = m.buffers().iter().map(|b| b.misses).sum();
        t.row(vec![
            slots.to_string(),
            switches.to_string(),
            misses.to_string(),
            s.machine.overhead_cycles.to_string(),
            s.cycles.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(the knee: once the 16-task working set fits the buffer, every switch\n \
         after the cold loads is free -- the extended model's cheap multitasking)\n",
    );
    out
}

/// Renders one figure by number (1..=13), or all of them.
pub fn figure(n: usize, config: &MachineConfig) -> Option<String> {
    Some(match n {
        1 => fig1(config),
        2 => fig2(config),
        3 => fig3(),
        4 => fig4(),
        5 => fig5(config),
        6 => fig6(),
        7 => fig7(),
        8 => fig8(),
        9 => fig9(),
        10 => fig10(),
        11 => fig11(),
        12 => fig12(),
        13 => fig13(),
        _ => return None,
    })
}

/// All figures concatenated.
pub fn all(config: &MachineConfig) -> String {
    (1..=13)
        .map(|n| figure(n, config).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventories_render() {
        let c = MachineConfig::small();
        assert!(fig1(&c).contains("ESM"));
        assert!(fig2(&c).contains("PRAM-NUMA machine"));
        assert!(fig5(&c).contains("TCF buffer"));
    }

    #[test]
    fn thickness_profiles_show_blocks() {
        let f3 = fig3();
        assert!(f3.contains("23"), "{f3}");
        assert!(f3.contains("15"), "{f3}");
        assert!(f3.contains("8"), "{f3}");
        let f4 = fig4();
        assert!(f4.contains("12"), "{f4}");
    }

    #[test]
    fn fig6_shows_both_modes() {
        let f = fig6();
        assert!(f.contains("(a) PRAM mode"));
        assert!(f.contains("(b) NUMA bunch"));
        assert!(f.contains('M'), "shared traffic missing:\n{f}");
        assert!(f.contains('L'), "local traffic missing:\n{f}");
    }

    #[test]
    fn variant_figures_render() {
        for n in 7..=12 {
            let f = figure(n, &MachineConfig::small()).unwrap();
            assert!(f.contains("cycles"), "figure {n} incomplete:\n{f}");
        }
    }

    #[test]
    fn fig13_sweep_has_knee() {
        let f = fig13();
        assert!(f.contains("buffer slots"));
        // The 1-slot row must show far more overhead than the 32-slot row.
        let rows: Vec<&str> = f
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .collect();
        assert!(rows.len() >= 6, "{f}");
    }
}
