#![warn(missing_docs)]
//! # tcf-bench — experiment harness reproducing every table and figure
//!
//! The paper's evaluation is qualitative: one property/cost table
//! (Table 1), thirteen figures (machine organisations and per-variant
//! execution schedules) and the paired programming examples of §4. This
//! crate regenerates all of them from the simulator:
//!
//! * [`table1`] — the analytic property matrix plus *measured*
//!   fetches-per-TCF, task-switch and flow-branch costs per variant,
//! * [`figures`] — structural inventories (Figs 1/2/5), thickness traces
//!   (Figs 3/4), latency-hiding schedules (Fig 6), per-variant schedule
//!   Gantt strips for one mixed workload (Figs 7–12) and the TCF-buffer
//!   occupancy/knee (Fig 13),
//! * [`progs`] — the §4 example pairs (P1–P8): each paper construct
//!   executed on the model it belongs to, reporting steps, cycles,
//!   issued operations and utilization,
//! * [`report`] — plain-text table rendering shared by the `repro`
//!   binary and the Criterion benches.
//!
//! The `repro` binary prints any experiment (`repro all`, `repro table1`,
//! `repro fig7`, `repro progs`, …); EXPERIMENTS.md archives its output
//! against the paper's claims.

pub mod debugger;
pub mod figures;
pub mod hotpath;
pub mod parallel;
pub mod progs;
pub mod report;
pub mod table1;
pub mod trace_export;
pub mod workloads;

use tcf_machine::MachineConfig;

/// The small experiment machine: `P = 4`, `T_p = 16` (fast, used by unit
/// tests and quick sweeps).
pub fn small_config() -> MachineConfig {
    MachineConfig::small()
}

/// The paper-scale machine: `P = 16` groups × `T_p = 64` threads
/// (ECLIPSE-like dimensioning) used for headline numbers.
pub fn paper_config() -> MachineConfig {
    MachineConfig::default_machine()
}
