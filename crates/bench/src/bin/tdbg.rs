//! `tdbg` — interactive debugger for TCF programs.
//!
//! ```sh
//! tdbg program.tce [--variant si|bal|mi|so|cso|ft] [--script cmds.txt]
//! tdbg --asm program.s
//! ```
//!
//! Without `--script`, reads commands from stdin (`help` lists them).

use std::env;
use std::fs;
use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use tcf_bench::debugger::{CmdOutcome, Debugger};
use tcf_core::{TcfMachine, Variant};
use tcf_machine::MachineConfig;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut script: Option<String> = None;
    let mut variant = Variant::SingleInstruction;
    let mut as_asm = false;
    let config = MachineConfig::small();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--asm" => as_asm = true,
            "--script" => script = it.next().cloned(),
            "--variant" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                variant = match v {
                    "si" => Variant::SingleInstruction,
                    "bal" => Variant::Balanced { bound: 8 },
                    "mi" => Variant::MultiInstruction,
                    "so" => Variant::SingleOperation,
                    "cso" => Variant::ConfigurableSingleOperation,
                    "ft" => Variant::FixedThickness {
                        width: config.threads_per_group,
                    },
                    other => {
                        eprintln!("unknown variant `{other}`");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => path = Some(other.to_string()),
        }
    }

    let path = match path {
        Some(p) => p,
        None => {
            eprintln!("usage: tdbg <program.tce> [--asm] [--variant v] [--script file]");
            return ExitCode::FAILURE;
        }
    };
    let source = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = if as_asm {
        match tcf_isa::asm::assemble(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("assembly error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match tcf_lang::compile(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("compile error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let machine = TcfMachine::new(config, variant, program);
    let mut dbg = Debugger::new(machine);

    if let Some(script_path) = script {
        let commands = match fs::read_to_string(&script_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {script_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", dbg.run_script(&commands));
        return ExitCode::SUCCESS;
    }

    let stdin = io::stdin();
    let mut out = String::new();
    print!("(tdbg) ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        out.clear();
        let outcome = dbg.exec(&line, &mut out);
        print!("{out}");
        if matches!(outcome, CmdOutcome::Quit) {
            break;
        }
        print!("(tdbg) ");
        io::stdout().flush().ok();
    }
    ExitCode::SUCCESS
}
