//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! repro all            # everything below, in order
//! repro table1         # Table 1 (analytic matrix + measured costs)
//! repro fig1 .. fig13  # one figure
//! repro figs           # all figures
//! repro progs          # the §4 programming examples P1..P8
//! repro sweeps         # ablations: balanced bound, buffer size,
//!                      #            allocation, network placement
//! repro metrics        # stable-schema JSON metrics dump (tcf-metrics/v1)
//! repro bench-json     # hot-path throughput probes -> BENCH_hotpath.json
//!                      # (steps/sec + instrs/sec; see docs/PERFORMANCE.md);
//!                      # --out <file> overrides the destination
//! repro --paper ...    # use the paper-scale machine (P=16, Tp=64)
//! repro --engine par:4 # run simulations on the deterministic parallel
//!                      # engine (seq | par:<workers>); results are
//!                      # bit-identical to sequential (docs/PARALLEL.md)
//! repro ... --trace-out trace.json
//!                      # additionally write a Chrome trace_event file
//!                      # (open in Perfetto / chrome://tracing)
//! repro ... --stream events.ndjson
//!                      # additionally stream the demo run's events
//!                      # incrementally (batched cursor drains) as
//!                      # tcf-obs-stream/v2 NDJSON; the file replays
//!                      # through the batch exporters byte-identically
//! repro ... --force    # overwrite existing output files (repro refuses
//!                      # to clobber them otherwise)
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use tcf_bench::{figures, progs, report::TextTable, table1, workloads};
use tcf_core::{Allocation, Variant};
use tcf_machine::MachineConfig;
use tcf_mem::ModuleMap;

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    args.retain(|a| a != "--paper");
    let force = args.iter().any(|a| a == "--force");
    args.retain(|a| a != "--force");
    let mut trace_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if i + 1 >= args.len() {
            eprintln!("--trace-out needs a file argument");
            return ExitCode::FAILURE;
        }
        trace_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut stream_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--stream") {
        if i + 1 >= args.len() {
            eprintln!("--stream needs a file argument");
            return ExitCode::FAILURE;
        }
        stream_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut bench_out = String::from("BENCH_hotpath.json");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if i + 1 >= args.len() {
            eprintln!("--out needs a file argument");
            return ExitCode::FAILURE;
        }
        bench_out = args.remove(i + 1);
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--engine") {
        if i + 1 >= args.len() {
            eprintln!("--engine needs a spec argument (seq | par:<workers>)");
            return ExitCode::FAILURE;
        }
        let spec = args.remove(i + 1);
        args.remove(i);
        if tcf_core::Engine::from_spec(&spec).is_none() {
            eprintln!("bad engine spec `{spec}` (expected seq | par:<workers>)");
            return ExitCode::FAILURE;
        }
        // Every machine the experiments construct picks the engine up
        // from the environment at build time.
        env::set_var("TCF_ENGINE", &spec);
    }
    let config = if paper {
        tcf_bench::paper_config()
    } else {
        tcf_bench::small_config()
    };
    let what = args.first().map(String::as_str).unwrap_or("all");

    // `metrics` is machine-readable: keep stdout pure JSON so the output
    // pipes straight into jq and friends; the banner goes to stderr.
    // `bench-json` likewise keeps its stdout to one status line.
    if what == "metrics" || what == "bench-json" {
        eprintln!(
            "# extended PRAM-NUMA reproduction -- machine: P={}, Tp={}, R={}",
            config.groups, config.threads_per_group, config.regs_per_thread
        );
    } else {
        println!(
            "# extended PRAM-NUMA reproduction -- machine: P={}, Tp={}, R={}\n",
            config.groups, config.threads_per_group, config.regs_per_thread
        );
    }

    match what {
        "all" => {
            println!("{}", table1::report(&config));
            println!("{}", figures::all(&config));
            println!("{}", progs::report(&config));
            println!("{}", sweeps(&config));
            println!("{}", scaling());
        }
        "table1" => println!("{}", table1::report(&config)),
        "figs" => println!("{}", figures::all(&config)),
        "progs" => println!("{}", progs::report(&config)),
        "sweeps" => println!("{}", sweeps(&config)),
        "scaling" => println!("{}", scaling()),
        "metrics" => println!("{}", tcf_bench::trace_export::metrics_demo(&config)),
        "bench-json" => {
            let json = tcf_bench::hotpath::bench_json(5);
            if let Err(e) = write_output(&bench_out, &json, force) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!("wrote hot-path bench ({} bytes) to {bench_out}", json.len());
        }
        other => {
            if let Some(n) = other
                .strip_prefix("fig")
                .and_then(|n| n.parse::<usize>().ok())
            {
                match figures::figure(n, &config) {
                    Some(s) => println!("{s}"),
                    None => {
                        eprintln!("no figure {n} (1..=13)");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                eprintln!(
                    "unknown experiment `{other}`; try \
                     all|table1|figs|fig<N>|progs|sweeps|scaling|metrics|bench-json"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = trace_out {
        let json = tcf_bench::trace_export::chrome_trace_demo(&config);
        if let Err(e) = write_output(&path, &json, force) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("wrote Chrome trace ({} bytes) to {path}", json.len());
    }
    if let Some(path) = stream_out {
        let ndjson = tcf_bench::trace_export::stream_demo(&config);
        if let Err(e) = write_output(&path, &ndjson, force) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        let lines = ndjson.lines().count();
        println!(
            "streamed {lines} NDJSON lines ({} bytes) to {path}",
            ndjson.len()
        );
    }
    ExitCode::SUCCESS
}

/// Writes an output artifact, refusing to clobber an existing file unless
/// `--force` was given.
fn write_output(path: &str, contents: &str, force: bool) -> Result<(), String> {
    if !force && fs::metadata(path).is_ok() {
        return Err(format!(
            "{path} already exists; pass --force to overwrite it"
        ));
    }
    fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Machine-size scaling: the same thick workload on P = 1..16 groups.
fn scaling() -> String {
    use tcf_net::Topology;
    let mut out =
        String::from("== Scaling: thick vector add (4096 elements) vs machine size ==\n\n");
    let size = 4096;
    let mut t = TextTable::new(vec![
        "P (groups)",
        "total threads",
        "cycles",
        "speedup vs P=1",
    ]);
    let rows = tcf_bench::parallel::par_map(vec![1usize, 2, 4, 8, 16], |p| {
        let mut c = tcf_bench::small_config();
        c.groups = p;
        c.topology = Topology::Crossbar { nodes: p };
        let mut m = workloads::tcf_machine(
            &c,
            Variant::SingleInstruction,
            workloads::tcf_vector_add(size),
        );
        workloads::init_arrays_tcf(&mut m, size);
        let s = m.run(10_000_000).unwrap();
        workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
        (p, s.cycles)
    });
    let base = rows[0].1 as f64;
    for (p, cycles) in rows {
        t.row(vec![
            p.to_string(),
            (p * 16).to_string(),
            cycles.to_string(),
            format!("{:.2}x", base / cycles as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("(horizontal allocation spreads the flow; speedup tracks P until memory-bound)\n");
    out
}

/// Design-choice ablations called out in DESIGN.md §7.
fn sweeps(config: &MachineConfig) -> String {
    let mut out = String::from("== Ablation sweeps ==\n\n");

    // Balanced bound sweep: synchronization overhead vs balance.
    out.push_str("-- Balanced variant bound sweep (vector add, size = 4*P*Tp) --\n");
    let size = 4 * config.total_threads();
    let mut t = TextTable::new(vec!["bound b", "steps", "cycles"]);
    // Hashed placement, so the sweep measures the bound rather than the
    // accidental perfect module locality that interleaved placement gives
    // rank-contiguous slices (a real alignment phenomenon, but not the
    // quantity under study here).
    let mut sweep_cfg = config.clone();
    sweep_cfg.module_map = ModuleMap::linear(11);
    let bounds = vec![1usize, 2, 4, 8, 16, 64];
    let rows = tcf_bench::parallel::par_map(bounds, |bound| {
        let mut m = workloads::tcf_machine(
            &sweep_cfg,
            Variant::Balanced { bound },
            workloads::tcf_vector_add(size),
        );
        workloads::init_arrays_tcf(&mut m, size);
        let s = m.run(5_000_000).unwrap();
        workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
        (bound, s.steps, s.cycles)
    });
    for (bound, steps, cycles) in rows {
        t.row(vec![
            bound.to_string(),
            steps.to_string(),
            cycles.to_string(),
        ]);
    }
    let mut m = workloads::tcf_machine(
        &sweep_cfg,
        Variant::SingleInstruction,
        workloads::tcf_vector_add(size),
    );
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(5_000_000).unwrap();
    t.row(vec![
        "unbounded (SI)".to_string(),
        s.steps.to_string(),
        s.cycles.to_string(),
    ]);
    out.push_str(&t.render());

    // Allocation sweep.
    out.push_str("\n-- Horizontal vs vertical allocation (thick vector add) --\n");
    let mut t = TextTable::new(vec!["size", "horizontal cycles", "vertical cycles"]);
    for mult in [1usize, 4, 16] {
        let size = mult * config.total_threads();
        let run = |alloc| {
            let mut m = workloads::tcf_machine_alloc(
                config,
                Variant::SingleInstruction,
                workloads::tcf_vector_add(size),
                alloc,
            );
            workloads::init_arrays_tcf(&mut m, size);
            m.run(5_000_000).unwrap().cycles
        };
        t.row(vec![
            size.to_string(),
            run(Allocation::Horizontal).to_string(),
            run(Allocation::Vertical).to_string(),
        ]);
    }
    out.push_str(&t.render());

    // Module placement: interleaved vs hashed under strided traffic.
    out.push_str("\n-- Shared-memory placement: interleaved vs randomized hash --\n");
    let size = 2 * config.total_threads();
    let stride_src = format!(
        "shared int a[{}] @ {};
         void main() {{
             #{size};
             a[. * {p}] = .;
         }}",
        size * config.groups,
        workloads::A_BASE,
        p = config.groups,
    );
    let program = tcf_lang::compile(&stride_src).unwrap();
    let mut t = TextTable::new(vec![
        "placement",
        "cycles",
        "queue p50",
        "queue p95",
        "queue max",
    ]);
    for (map, name) in [
        (ModuleMap::Interleaved, "interleaved (addr mod M)"),
        (ModuleMap::linear(7), "linear hash"),
    ] {
        let mut c2 = config.clone();
        c2.module_map = map;
        let mut m = tcf_core::TcfMachine::new(c2, Variant::SingleInstruction, program.clone());
        let s = m.run(5_000_000).unwrap();
        t.row(vec![
            name.to_string(),
            s.cycles.to_string(),
            s.network.p50_queue_cycles().to_string(),
            s.network.p95_queue_cycles().to_string(),
            s.network.max_queue_cycles.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "(stride-{} writes hammer one module when interleaved; \
         the queue-delay percentiles show the congestion tail)\n",
        config.groups
    ));

    // ILP-TLP co-execution (§3.2): functional units per cycle.
    out.push_str("\n-- ILP-TLP co-execution: functional units per cycle (§3.2) --\n");
    let size = 4 * config.total_threads();
    let mut t = TextTable::new(vec![
        "ilp width",
        "cycles (thick add)",
        "cycles (NUMA loop)",
    ]);
    for width in [1usize, 2, 4, 8] {
        let mut c2 = config.clone();
        c2.ilp_width = width;
        let mut m = tcf_core::TcfMachine::new(
            c2.clone(),
            Variant::SingleInstruction,
            workloads::tcf_vector_add(size),
        );
        workloads::init_arrays_tcf(&mut m, size);
        let thick = m.run(5_000_000).unwrap().cycles;
        workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
        let mut m = tcf_core::TcfMachine::new(
            c2,
            Variant::SingleInstruction,
            workloads::tcf_numa_seq(300, 8),
        );
        let seq = m.run(5_000_000).unwrap().cycles;
        t.row(vec![width.to_string(), thick.to_string(), seq.to_string()]);
    }
    out.push_str(&t.render());
    out.push_str("(thick data parallelism fills the extra units; the sequential stream cannot)\n");

    // Operand storage: cached register file capacity (§3.3).
    out.push_str("\n-- Cached register file capacity (operand storage, §3.3) --\n");
    let spill_src = format!(
        "shared int out[4096] @ {};
         void main() {{
             #1024;
             int a = . * 3;
             int b = a + .;
             int c = b * a;
             out[.] = c;
         }}",
        workloads::C_BASE,
    );
    let spill_prog = tcf_lang::compile(&spill_src).unwrap();
    let mut t = TextTable::new(vec!["reg cache words", "spill refs", "cycles"]);
    for cache in [0usize, 4096, 1024, 256, 64] {
        let mut c2 = config.clone();
        c2.reg_cache_words = cache;
        let mut m = tcf_core::TcfMachine::new(c2, Variant::SingleInstruction, spill_prog.clone());
        let s = m.run(5_000_000).unwrap();
        t.row(vec![
            if cache == 0 {
                "unlimited".to_string()
            } else {
                cache.to_string()
            },
            s.machine.spill_refs.to_string(),
            s.cycles.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}
