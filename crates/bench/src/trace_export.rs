//! Trace/metrics export helpers behind `repro --trace-out` and
//! `repro metrics`.
//!
//! Runs one small demo workload that exercises every lifecycle event the
//! observability layer records — `parallel` (split/join), `numa`
//! (mode switches both ways), a thickness change and TCF-buffer reloads —
//! with both the cycle-level [`Trace`] and the flow-event [`ObsSink`]
//! enabled, then serializes the run as a Chrome `trace_event` JSON file
//! (loadable in Perfetto / `chrome://tracing`) or a stable-schema metrics
//! dump. See `docs/OBSERVABILITY.md`.
//!
//! [`Trace`]: tcf_obs::Trace
//! [`ObsSink`]: tcf_obs::ObsSink

use tcf_core::{TcfMachine, Variant};
use tcf_isa::word::Word;
use tcf_lang::compile;
use tcf_machine::MachineConfig;
use tcf_obs::chrome::chrome_trace_with_workers;
use tcf_obs::json::metrics_json;
use tcf_obs::stream::{drain_ndjson, header_line, DRAIN_INTERVAL_STEPS};
use tcf_obs::{MetricValue, StreamCursor};

use crate::workloads::{A_BASE, B_BASE, C_BASE};

/// The demo source: a two-arm `parallel` block (split + join spans), a
/// NUMA sequential section (mode-switch spans) and a final thick phase
/// (thickness-change span).
fn demo_source() -> String {
    format!(
        "shared int a[32] @ {A_BASE};
         shared int b[32] @ {B_BASE};
         shared int c[32] @ {C_BASE};
         shared int acc @ 70;
         void main() {{
             parallel {{
                 #16: c[.] = a[.] + b[.];
                 #16: c[. + 16] = a[. + 16] * 2;
             }}
             numa (4) {{
                 int i = 0;
                 while (i < 12) {{
                     i = i + 1;
                 }}
                 acc = i;
             }}
             #32;
             c[.] = c[.] + 1;
         }}"
    )
}

/// Builds the demo machine with tracing and flow-event recording on.
pub fn demo_machine(config: &MachineConfig) -> TcfMachine {
    let program = compile(&demo_source()).expect("demo workload compiles");
    let mut m = TcfMachine::new(config.clone(), Variant::SingleInstruction, program);
    for i in 0..32 {
        m.poke(A_BASE + i, i as Word).unwrap();
        m.poke(B_BASE + i, 2 * i as Word).unwrap();
    }
    m.set_tracing(true);
    m.set_observing(true);
    m
}

/// Runs the demo and returns the Chrome `trace_event` JSON document,
/// including ring-truncation notices and the per-worker utilization
/// track.
pub fn chrome_trace_demo(config: &MachineConfig) -> String {
    let mut m = demo_machine(config);
    m.run(1_000_000).expect("demo runs to completion");
    chrome_trace_with_workers(
        &m.trace().events(),
        &m.obs().events(),
        m.trace().dropped(),
        m.obs().dropped(),
        &m.engine_counters().worker_lanes,
    )
}

/// Runs the demo with a live streaming subscriber attached: every
/// [`DRAIN_INTERVAL_STEPS`] machine steps (and once after the run),
/// everything new in both event buffers is drained through a
/// [`StreamCursor`] and appended as `tcf-obs-stream/v2` NDJSON — the
/// incremental pump behind `repro --stream`. The resulting document
/// replays through the batch exporters to byte-identical artifacts (the
/// round-trip test below pins this); the drain interval only changes how
/// the lines are interleaved between the two streams, never the per-stream
/// sequences the replay reads.
pub fn stream_demo(config: &MachineConfig) -> String {
    let mut m = demo_machine(config);
    let mut cursor = StreamCursor::default();
    let mut doc = header_line();
    let mut steps = 0u64;
    loop {
        let more = m.step().expect("demo runs to completion");
        steps += 1;
        if steps.is_multiple_of(DRAIN_INTERVAL_STEPS) {
            drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
        }
        if !more {
            break;
        }
    }
    drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
    doc
}

/// Runs the demo and returns the stable-schema metrics JSON dump
/// (`tcf-metrics/v1`), including the per-step snapshots replayed from the
/// recorded event stream.
pub fn metrics_demo(config: &MachineConfig) -> String {
    let mut m = demo_machine(config);
    m.run(1_000_000).expect("demo runs to completion");
    let mut reg = m.metrics();
    // Graft the engine-dependent per-worker series on: `metrics()` keeps
    // them out so its output stays engine-independent, but the CLI dump
    // explicitly reports the engine that ran.
    for (name, v) in m.engine_metrics().iter() {
        if let MetricValue::Counter(c) = v {
            reg.set_counter(name, *c);
        }
    }
    let replayed = tcf_obs::MetricsRegistry::replay(&m.trace().events(), &m.obs().events());
    reg.snapshots_mut()
        .extend(replayed.snapshots().iter().cloned());
    metrics_json(&reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_obs::json::validate_json;

    #[test]
    fn demo_trace_is_valid_and_has_lifecycle_spans() {
        let json = chrome_trace_demo(&MachineConfig::small());
        validate_json(&json).expect("chrome trace is valid JSON");
        for name in ["split", "join", "mode_switch"] {
            assert!(
                json.contains(&format!("\"name\":\"{name}\"")),
                "missing {name} span in {json}"
            );
        }
    }

    #[test]
    fn streamed_demo_replays_to_identical_artifacts() {
        use tcf_obs::chrome::chrome_trace_with_drops;
        use tcf_obs::stream::parse_stream;
        use tcf_obs::MetricsRegistry;

        let config = MachineConfig::small();
        let doc = stream_demo(&config);
        let re = parse_stream(&doc).expect("stream parses");
        assert_eq!(re.trace_dropped + re.events_dropped, 0, "unbounded sinks");

        let mut m = demo_machine(&config);
        m.run(1_000_000).unwrap();
        assert_eq!(re.trace, m.trace().events(), "trace stream diverged");
        assert_eq!(re.events, m.obs().events(), "flow stream diverged");
        // Replaying the streamed document through the batch exporters is
        // byte-identical to exporting the non-streamed run directly.
        assert_eq!(
            chrome_trace_with_drops(&re.trace, &re.events, re.trace_dropped, re.events_dropped),
            chrome_trace_with_drops(
                &m.trace().events(),
                &m.obs().events(),
                m.trace().dropped(),
                m.obs().dropped()
            )
        );
        assert_eq!(
            metrics_json(&MetricsRegistry::replay(&re.trace, &re.events)),
            metrics_json(&MetricsRegistry::replay(
                &m.trace().events(),
                &m.obs().events()
            ))
        );
    }

    #[test]
    fn demo_metrics_report_the_new_counters() {
        let json = metrics_demo(&MachineConfig::small());
        for key in [
            "thick.decay_setthick",
            "thick.decay_lane_write",
            "thick.decay_mem_reply",
            "thick.decay_fault",
            "thick.decay_balanced_resume",
            "thick.decay_async_slice",
            "engine.compressed_slices",
            "engine.coalesce_hits",
            "engine.worker0.lanes",
            "engine.worker0.utilization_ppm",
            "mem.bulk_fast",
            "net.route_sends",
            "obs.trace_dropped",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn demo_metrics_are_valid_json_with_snapshots() {
        let json = metrics_demo(&MachineConfig::small());
        validate_json(&json).expect("metrics dump is valid JSON");
        assert!(json.contains("\"schema\":\"tcf-metrics/v1\""), "{json}");
        assert!(json.contains("machine.cycles"), "{json}");
        assert!(json.contains("\"steps\":["), "{json}");
    }
}
