//! Trace/metrics export helpers behind `repro --trace-out` and
//! `repro metrics`.
//!
//! Runs one small demo workload that exercises every lifecycle event the
//! observability layer records — `parallel` (split/join), `numa`
//! (mode switches both ways), a thickness change and TCF-buffer reloads —
//! with both the cycle-level [`Trace`] and the flow-event [`ObsSink`]
//! enabled, then serializes the run as a Chrome `trace_event` JSON file
//! (loadable in Perfetto / `chrome://tracing`) or a stable-schema metrics
//! dump. See `docs/OBSERVABILITY.md`.
//!
//! [`Trace`]: tcf_obs::Trace
//! [`ObsSink`]: tcf_obs::ObsSink

use tcf_core::{TcfMachine, Variant};
use tcf_isa::word::Word;
use tcf_lang::compile;
use tcf_machine::MachineConfig;
use tcf_obs::chrome::chrome_trace;
use tcf_obs::json::metrics_json;

use crate::workloads::{A_BASE, B_BASE, C_BASE};

/// The demo source: a two-arm `parallel` block (split + join spans), a
/// NUMA sequential section (mode-switch spans) and a final thick phase
/// (thickness-change span).
fn demo_source() -> String {
    format!(
        "shared int a[32] @ {A_BASE};
         shared int b[32] @ {B_BASE};
         shared int c[32] @ {C_BASE};
         shared int acc @ 70;
         void main() {{
             parallel {{
                 #16: c[.] = a[.] + b[.];
                 #16: c[. + 16] = a[. + 16] * 2;
             }}
             numa (4) {{
                 int i = 0;
                 while (i < 12) {{
                     i = i + 1;
                 }}
                 acc = i;
             }}
             #32;
             c[.] = c[.] + 1;
         }}"
    )
}

/// Builds the demo machine with tracing and flow-event recording on.
pub fn demo_machine(config: &MachineConfig) -> TcfMachine {
    let program = compile(&demo_source()).expect("demo workload compiles");
    let mut m = TcfMachine::new(config.clone(), Variant::SingleInstruction, program);
    for i in 0..32 {
        m.poke(A_BASE + i, i as Word).unwrap();
        m.poke(B_BASE + i, 2 * i as Word).unwrap();
    }
    m.set_tracing(true);
    m.set_observing(true);
    m
}

/// Runs the demo and returns the Chrome `trace_event` JSON document.
pub fn chrome_trace_demo(config: &MachineConfig) -> String {
    let mut m = demo_machine(config);
    m.run(1_000_000).expect("demo runs to completion");
    chrome_trace(&m.trace().events(), &m.obs().events())
}

/// Runs the demo and returns the stable-schema metrics JSON dump
/// (`tcf-metrics/v1`), including the per-step snapshots replayed from the
/// recorded event stream.
pub fn metrics_demo(config: &MachineConfig) -> String {
    let mut m = demo_machine(config);
    m.run(1_000_000).expect("demo runs to completion");
    let mut reg = m.metrics();
    let replayed = tcf_obs::MetricsRegistry::replay(&m.trace().events(), &m.obs().events());
    reg.snapshots_mut()
        .extend(replayed.snapshots().iter().cloned());
    metrics_json(&reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_obs::json::validate_json;

    #[test]
    fn demo_trace_is_valid_and_has_lifecycle_spans() {
        let json = chrome_trace_demo(&MachineConfig::small());
        validate_json(&json).expect("chrome trace is valid JSON");
        for name in ["split", "join", "mode_switch"] {
            assert!(
                json.contains(&format!("\"name\":\"{name}\"")),
                "missing {name} span in {json}"
            );
        }
    }

    #[test]
    fn demo_metrics_are_valid_json_with_snapshots() {
        let json = metrics_demo(&MachineConfig::small());
        validate_json(&json).expect("metrics dump is valid JSON");
        assert!(json.contains("\"schema\":\"tcf-metrics/v1\""), "{json}");
        assert!(json.contains("machine.cycles"), "{json}");
        assert!(json.contains("\"steps\":["), "{json}");
    }
}
