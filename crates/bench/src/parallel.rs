//! Host-side parallel sweep driver.
//!
//! Parameter sweeps run many *independent* simulations; this maps them
//! across host threads with `std::thread::scope`, preserving input order
//! in the output. Simulations themselves stay single-threaded and
//! deterministic — parallelism is purely across sweep points.

/// Applies `f` to every item on its own scoped thread, returning results
/// in input order. Intended for sweeps of a handful of expensive points;
/// spawns one thread per item.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(items.len());
        for item in items {
            let f = &f;
            handles.push(s.spawn(move || f(item)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map(vec![3u64, 1, 4, 1, 5, 9], |x| x * 2);
        assert_eq!(out, vec![6, 2, 8, 2, 10, 18]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn runs_simulations_in_parallel() {
        use tcf_core::Variant;
        use tcf_machine::MachineConfig;
        // Same simulation on 4 threads must give identical, deterministic
        // results.
        let cycles = par_map(vec![(), (), (), ()], |_| {
            let mut m = crate::workloads::tcf_machine(
                &MachineConfig::small(),
                Variant::SingleInstruction,
                crate::workloads::tcf_vector_add(64),
            );
            crate::workloads::init_arrays_tcf(&mut m, 64);
            m.run(100_000).unwrap().cycles
        });
        assert!(cycles.windows(2).all(|w| w[0] == w[1]));
    }
}
