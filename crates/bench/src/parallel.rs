//! Host-side parallel sweep driver.
//!
//! Parameter sweeps run many *independent* simulations; this maps them
//! across host threads with `std::thread::scope`, preserving input order
//! in the output. Simulations themselves stay single-threaded and
//! deterministic — parallelism is purely across sweep points.

/// Applies `f` to every item across at most
/// [`available_parallelism`](std::thread::available_parallelism) scoped
/// threads, returning results in input order. Items are split into
/// contiguous chunks, one chunk per thread, so a sweep of hundreds of
/// points no longer spawns hundreds of threads.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    par_map_threads(items, threads, f)
}

/// [`par_map`] with an explicit thread cap (≥ 1; chunking never exceeds
/// the item count).
pub fn par_map_threads<I, T, F>(mut items: Vec<I>, max_threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let workers = max_threads.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks: the first `n % workers` chunks get one extra
    // item, so sizes differ by at most one and order is preserved by
    // concatenating chunk results.
    let base = n / workers;
    let extra = n % workers;
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        let rest = items.split_off(take);
        chunks.push(std::mem::replace(&mut items, rest));
    }
    debug_assert!(items.is_empty());
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let f = &f;
            handles.push(s.spawn(move || chunk.into_iter().map(f).collect::<Vec<T>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn preserves_order() {
        let out = par_map(vec![3u64, 1, 4, 1, 5, 9], |x| x * 2);
        assert_eq!(out, vec![6, 2, 8, 2, 10, 18]);
    }

    #[test]
    fn preserves_order_beyond_thread_count() {
        // More items than any plausible host parallelism: chunking must
        // still concatenate back in input order.
        let items: Vec<u64> = (0..200).collect();
        let out = par_map(items, |x| x * 3 + 1);
        let expected: Vec<u64> = (0..200).map(|x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn caps_thread_usage() {
        let seen = Mutex::new(HashSet::new());
        let out = par_map_threads((0..100u64).collect(), 3, |x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            x + 1
        });
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        assert!(
            seen.lock().unwrap().len() <= 3,
            "more than 3 worker threads"
        );
    }

    #[test]
    fn single_thread_runs_inline() {
        let calls = AtomicUsize::new(0);
        let out = par_map_threads(vec![10u64, 20, 30], 1, |x| {
            calls.fetch_add(1, Ordering::SeqCst);
            x / 10
        });
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn runs_simulations_in_parallel() {
        use tcf_core::Variant;
        use tcf_machine::MachineConfig;
        // Same simulation on 4 threads must give identical, deterministic
        // results.
        let cycles = par_map(vec![(), (), (), ()], |_| {
            let mut m = crate::workloads::tcf_machine(
                &MachineConfig::small(),
                Variant::SingleInstruction,
                crate::workloads::tcf_vector_add(64),
            );
            crate::workloads::init_arrays_tcf(&mut m, 64);
            m.run(100_000).unwrap().cycles
        });
        assert!(cycles.windows(2).all(|w| w[0] == w[1]));
    }
}
