//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One cell's text (empty string when out of range).
    pub fn cell(&self, row: usize, col: usize) -> &str {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let measure = |row: &[String], width: &mut Vec<usize>| {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        };
        measure(&self.header, &mut width);
        for r in &self.rows {
            measure(r, &mut width);
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, w) in width.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(new: f64, base: f64) -> String {
    if base == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", new / base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Columns aligned: "1" and "23456" start at the same offset.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find('2').unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(10.0, 4.0), "2.50x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
    }
}
