//! Table 1 reproduction: key properties and measured costs of primitive
//! operations across the six variants.
//!
//! The paper states the property matrix analytically; this module prints
//! that matrix (derived from the model definitions in
//! `tcf_core::Variant::properties`) and then *measures* the three cost
//! rows on the simulator:
//!
//! * **fetches per element operation** — instruction-memory pressure of
//!   the thick vector add (`#N; c.=a.+b.;` vs its loop/fork forms),
//! * **task switch cost** — cycles of switching between resident tasks
//!   (TCF variants: the TCF buffer; thread machines: the software
//!   save/restore of all `T_p × R` registers),
//! * **flow branch cost** — cycles charged for creating parallel flows
//!   (`split`: `O(R)` register copies) vs a plain branch.

use tcf_core::{TcfMachine, Variant};
use tcf_isa::asm::assemble;
use tcf_machine::MachineConfig;
use tcf_pram::PramMachine;

use crate::report::TextTable;
use crate::workloads;

/// Renders the analytic property matrix (the static half of Table 1).
pub fn analytic(config: &MachineConfig) -> String {
    let mut t = TextTable::new(vec![
        "property",
        "Single instr",
        "Balanced",
        "Multi-instr",
        "Single-op",
        "Config single-op",
        "Fixed thickness",
    ]);
    let props: Vec<_> = Variant::all(config.threads_per_group)
        .iter()
        .map(|v| v.properties(config))
        .collect();
    let row = |t: &mut TextTable,
               name: &str,
               f: &dyn Fn(&tcf_core::variant::VariantProperties) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(props.iter().map(f));
        t.row(cells);
    };
    row(&mut t, "Number of TCFs", &|p| p.num_tcfs.clone());
    row(&mut t, "Number of threads", &|p| p.num_threads.clone());
    row(&mut t, "Registers per thread", &|p| {
        p.regs_per_thread.clone()
    });
    row(&mut t, "Fetches per TCF", &|p| p.fetches_per_tcf.clone());
    row(&mut t, "Cost of task switch", &|p| {
        p.task_switch.to_string()
    });
    row(&mut t, "Cost of flow branch", &|p| {
        p.flow_branch.to_string()
    });
    row(&mut t, "PRAM operation", &|p| yn(p.pram_op));
    row(&mut t, "NUMA operation", &|p| yn(p.numa_op));
    row(&mut t, "Sequential operation", &|p| {
        p.sequential.to_string()
    });
    row(&mut t, "MIMD", &|p| yn(p.mimd));
    t.render()
}

fn yn(b: bool) -> String {
    if b { "yes" } else { "no" }.to_string()
}

/// Measured fetches per element operation of the vector add on each
/// variant (Table 1's fetch row, made quantitative).
pub fn measured_fetches(config: &MachineConfig) -> TextTable {
    let size = 4 * config.total_threads();
    let mut t = TextTable::new(vec!["variant", "fetches", "element ops", "fetches/element"]);

    let mut record = |name: &str, fetches: u64, elems: usize| {
        t.row(vec![
            name.to_string(),
            fetches.to_string(),
            elems.to_string(),
            format!("{:.4}", fetches as f64 / elems as f64),
        ]);
    };

    // Single instruction: one fetch per TCF instruction.
    let mut m = workloads::tcf_machine(
        config,
        Variant::SingleInstruction,
        workloads::tcf_vector_add(size),
    );
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(1_000_000).unwrap();
    workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
    record("Single instruction", s.machine.fetches, size);

    // Balanced: refetch per slice -> u/b fetches per thick instruction.
    let bound = 8;
    let mut m = workloads::tcf_machine(
        config,
        Variant::Balanced { bound },
        workloads::tcf_vector_add(size),
    );
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(1_000_000).unwrap();
    record(&format!("Balanced (b = {bound})"), s.machine.fetches, size);

    // Multi-instruction: every spawned thread fetches its own stream.
    let mut m = workloads::tcf_machine(config, Variant::MultiInstruction, fork_vector_add(size));
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(1_000_000).unwrap();
    workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
    record("Multi-instruction", s.machine.fetches, size);

    // Single-operation: the loop version, one fetch per thread per
    // instruction.
    let mut m = workloads::tcf_machine(
        config,
        Variant::SingleOperation,
        workloads::loop_vector_add(size),
    );
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(1_000_000).unwrap();
    workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
    record("Single-operation", s.machine.fetches, size);

    // Configurable single operation: same fetch behaviour as
    // Single-operation for data-parallel code.
    let mut m = workloads::tcf_machine(
        config,
        Variant::ConfigurableSingleOperation,
        workloads::loop_vector_add(size),
    );
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(1_000_000).unwrap();
    record("Config single-op", s.machine.fetches, size);

    // Fixed thickness: chunked vector loop at the fixed width.
    let width = config.threads_per_group;
    let mut m = workloads::tcf_machine(
        config,
        Variant::FixedThickness { width },
        chunked_vector_add(size, width),
    );
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(1_000_000).unwrap();
    workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
    record("Fixed thickness", s.machine.fetches, size);

    t
}

/// Vector add for the Multi-instruction variant: `fork` one thread per
/// element.
fn fork_vector_add(size: usize) -> tcf_isa::program::Program {
    let (a, b, c) = (workloads::A_BASE, workloads::B_BASE, workloads::C_BASE);
    tcf_lang::compile(&format!(
        "shared int a[{size}] @ {a};
         shared int b[{size}] @ {b};
         shared int c[{size}] @ {c};
         void main() {{
             fork (i = 0; i < {size}) {{
                 c[i] = a[i] + b[i];
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// Vector add for the Fixed-thickness variant: the width-`w` vector flow
/// loops over size/w chunks.
fn chunked_vector_add(size: usize, width: usize) -> tcf_isa::program::Program {
    let (a, b, c) = (workloads::A_BASE, workloads::B_BASE, workloads::C_BASE);
    tcf_lang::compile(&format!(
        "shared int a[{size}] @ {a};
         shared int b[{size}] @ {b};
         shared int c[{size}] @ {c};
         void main() {{
             int chunk = 0;
             while (chunk < {size}) {{
                 c[. + chunk] = a[. + chunk] + b[. + chunk];
                 chunk = chunk + {width};
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// Measured task-switch cost (cycles per switch).
pub fn measured_task_switch(config: &MachineConfig) -> TextTable {
    let mut t = TextTable::new(vec!["model", "scenario", "cycles/switch"]);

    // Extended model, tasks resident in the TCF buffer: free.
    let ntasks = (config.tcf_buffer_slots / 2).max(2);
    let program = workloads::task_program(50);
    let entry = program.label("task").unwrap();
    let mut m = TcfMachine::new(config.clone(), Variant::SingleInstruction, program.clone());
    for _ in 0..ntasks {
        m.spawn_task(entry, 1).unwrap();
    }
    let s = m.run(1_000_000).unwrap();
    let switches: u64 = m.buffers().iter().map(|b| b.switches).sum();
    let overhead: u64 = m.buffers().iter().map(|b| b.overhead_cycles).sum();
    t.row(vec![
        "Extended (SI)".to_string(),
        format!("{ntasks} tasks resident"),
        format!(
            "{:.3} (cold loads only)",
            overhead as f64 / switches.max(1) as f64
        ),
    ]);
    drop(s);

    // Extended model beyond buffer capacity: pays the reload.
    let mut over = config.clone();
    over.tcf_buffer_slots = 2;
    let mut m = TcfMachine::new(over, Variant::SingleInstruction, program);
    for _ in 0..8 {
        m.spawn_task(entry, 1).unwrap();
    }
    m.run(1_000_000).unwrap();
    let switches: u64 = m.buffers().iter().map(|b| b.switches).sum();
    let overhead: u64 = m.buffers().iter().map(|b| b.overhead_cycles).sum();
    t.row(vec![
        "Extended (SI)".to_string(),
        "8 tasks, 2-slot buffer (thrashing)".to_string(),
        format!("{:.3}", overhead as f64 / switches.max(1) as f64),
    ]);

    // ESM / thread machines: software save+restore of every thread's R
    // registers.
    let regs = config.regs_per_thread;
    let mut m = PramMachine::new(
        config.clone(),
        workloads::context_switch_program(regs, config.shared_size / 2),
    );
    let s = m.run(1_000_000).unwrap();
    t.row(vec![
        "ESM (Single-op/Config/Fixed)".to_string(),
        format!(
            "save+restore {} regs x {} threads",
            regs, config.threads_per_group
        ),
        format!("{}", s.cycles),
    ]);

    t
}

/// Measured flow-branch cost: creating control parallelism.
pub fn measured_flow_branch(config: &MachineConfig) -> TextTable {
    let mut t = TextTable::new(vec!["model", "operation", "overhead cycles"]);

    // Extended model: split to one child + join (O(R) register copy).
    let program = assemble(
        "main:
            split (1 -> child)
            halt
        child:
            join
        ",
    )
    .unwrap();
    let mut m = TcfMachine::new(config.clone(), Variant::SingleInstruction, program);
    let s = m.run(100).unwrap();
    t.row(vec![
        "Extended (SI)".to_string(),
        "split 1 child".to_string(),
        format!(
            "{} (R = {})",
            s.machine.overhead_cycles, config.regs_per_thread
        ),
    ]);

    // Thread machine: a conditional branch costs one instruction slot.
    let program = assemble(
        "main:
            mfs r1, gid
            bnez r1, skip
        skip:
            halt
        ",
    )
    .unwrap();
    let mut m = PramMachine::new(config.clone(), program);
    let s = m.run(100).unwrap();
    t.row(vec![
        "ESM baseline".to_string(),
        "conditional branch".to_string(),
        format!("0 (branch is 1 of {} issued ops)", s.machine.issued()),
    ]);

    t
}

/// The full Table 1 report.
pub fn report(config: &MachineConfig) -> String {
    let mut out = String::new();
    out.push_str("== Table 1: key properties of the extended PRAM-NUMA variants ==\n\n");
    out.push_str(&analytic(config));
    out.push_str("\n-- measured: instruction fetches (vector add, size = 4*P*Tp) --\n");
    out.push_str(&measured_fetches(config).render());
    out.push_str("\n-- measured: task switch --\n");
    out.push_str(&measured_task_switch(config).render());
    out.push_str("\n-- measured: flow branch --\n");
    out.push_str(&measured_flow_branch(config).render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_table_covers_all_variants() {
        let s = analytic(&MachineConfig::small());
        assert!(s.contains("Single instr"));
        assert!(s.contains("Fixed thickness"));
        assert!(s.contains("Fetches per TCF"));
    }

    #[test]
    fn measured_fetches_shape() {
        // The extended model must need far fewer fetches per element than
        // the thread machines (Table 1: 1 vs T_p per TCF instruction).
        let t = measured_fetches(&MachineConfig::small());
        let rendered = t.render();
        let get = |name: &str| -> f64 {
            rendered
                .lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("row {name} missing:\n{rendered}"))
                .split_whitespace()
                .last()
                .unwrap()
                .parse()
                .unwrap()
        };
        let si = get("Single instruction");
        let so = get("Single-operation");
        let mi = get("Multi-instruction");
        assert!(si * 10.0 < so, "SI {si} vs SO {so}");
        assert!(si * 10.0 < mi, "SI {si} vs MI {mi}");
    }

    #[test]
    fn task_switch_free_when_resident() {
        let t = measured_task_switch(&MachineConfig::small());
        let r = t.render();
        assert!(r.contains("cold loads only"));
        assert!(r.contains("thrashing"));
    }

    #[test]
    fn flow_branch_is_order_r() {
        let t = measured_flow_branch(&MachineConfig::small()).render();
        // Split overhead should be R = 32 cycles on the small config.
        assert!(t.contains("32"), "{t}");
    }
}
