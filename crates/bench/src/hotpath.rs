//! Hot-path throughput probes: the fixed workload set measured by the
//! `step_rate` criterion bench and exported by `repro bench-json`.
//!
//! Seven workloads cover the simulator's steady states (see
//! `docs/PERFORMANCE.md`):
//!
//! * **thick_pram_flow** — one flow of thickness 1024 looping over a
//!   shared array: stresses per-lane operand access and the shared-memory
//!   resolution path (fully affine: lane ids, unit-stride addresses).
//! * **thin_numa_flow** — a thickness-1 NUMA bunch spinning a counter:
//!   stresses instruction fetch/dispatch with no memory pressure.
//! * **mixed_multitasking** — a dozen tasks of mixed thickness scheduled
//!   against each other: stresses flow management plus both regimes at
//!   once.
//! * **broadcast_stride_sweep** — a thick flow broadcasting a uniform
//!   value through a stride-2 array sweep: stresses the non-unit-stride
//!   bulk memory path and affine load-to-store forwarding.
//! * **lane_id_reduction** — a thick flow folding its lane ids into a
//!   multiprefix accumulator: stresses the bulk multioperation path
//!   (closed-form combining) seeded from a compressed lane-id read.
//! * **branchy_divergence** — a `Sel`-heavy parity recurrence whose first
//!   instruction (`and` on the lane ids) escapes the affine algebra, so
//!   every register decays to explicit lanes: stresses the per-lane
//!   fallback (the structure-of-arrays SIMD kernels of `tcf_core::lanes`).
//! * **divergent_compressed** — a `Sel`-heavy threshold recurrence at
//!   thickness 10^6 whose per-iteration cut point moves through the lane
//!   range (never aligned to a fragment boundary), so every step is
//!   genuinely divergent yet stays compressed under run-length lane
//!   masks: stresses the masked/piecewise closed-form path (mask
//!   classification, masked `Sel`, piecewise ALU, and the rank-ordered
//!   masked multioperation chain). Per-step cost is O(#mask runs), not
//!   O(thickness) — `bench_json` re-measures it at 100× the thickness
//!   (10^8 lanes) as `divergent_compressed_100x`, and `tools/bench_gate.py`
//!   asserts the two step rates stay within 2×.
//!
//! On top of the workload set, the [`VariantProbe`] family re-expresses
//! the divergent recurrence in every other execution variant's natural
//! idiom — `divergent_balanced` (bounded resume), `divergent_async`
//! (`spawn` block flows), `divergent_numa` (a `1/slots` bunch stream),
//! `divergent_fixed` (machine-fixed vector width) and `divergent_spmd`
//! (`SingleOperation` unit flows) — each at a baseline and a `_100x`
//! size, so the gate can pin the flat-cost-in-thickness claim on all six
//! variants, not just `SingleInstruction`.
//!
//! All run on the small machine (`P = 4`, `T_p = 16`) so a probe
//! completes in milliseconds; throughput is reported as simulated machine
//! steps and issued units ("instrs") per host second.

use std::time::Instant;

use tcf_core::{TcfMachine, Variant};
use tcf_isa::program::Program;
use tcf_machine::MachineConfig;
use tcf_obs::stream::{drain_ndjson, header_line, DRAIN_INTERVAL_STEPS};
use tcf_obs::StreamCursor;
use tcf_pram::RunSummary;

use crate::workloads;

/// One of the measured workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Thick PRAM-mode flow (thickness 1024 array loop).
    ThickPram,
    /// Thin NUMA-mode flow (thickness-1 counter loop).
    ThinNuma,
    /// Mixed-thickness multitasking (12 concurrent tasks).
    MixedMultitasking,
    /// Broadcast plus stride-2 array sweep (thickness 1024).
    BroadcastStride,
    /// Lane-id multiprefix reduction (thickness 1024).
    LaneIdReduction,
    /// Sel-heavy parity recurrence on decayed lanes (thickness 1024).
    BranchyDivergence,
    /// Sel-heavy threshold recurrence under lane masks (thickness 10^6).
    DivergentCompressed,
}

/// Thickness of the [`Workload::DivergentCompressed`] probe. The
/// `divergent_compressed_100x` scaling probe runs the same program at
/// 100× this (10^8 lanes, still below `tcf_core`'s `MAX_THICKNESS`).
pub const DIVERGENT_THICKNESS: usize = 1_000_000;

/// Builds the divergent-compressed recurrence at an arbitrary thickness
/// `n` — the body of [`Workload::DivergentCompressed`] and its 100×
/// scaling probe. Sixteen iterations; iteration `i` compares the affine
/// lane ids against the moving cut `i·(n/24 + 7) + n/3 + 11` (coprime-ish
/// steps, so the cut never lands on a fragment boundary), folds the
/// masked `Sel` rejoin into a `Segments` accumulator (one extra run per
/// iteration, bounded well below `MASK_RUN_BUDGET`), and contributes
/// every lane to one shared sum word — a rank-ordered chain of
/// zero-astride bulk multioperations that shared memory combines in
/// closed form. No instruction in the loop costs more than O(#mask runs).
pub fn divergent_program(n: usize) -> Program {
    use tcf_isa::{ProgramBuilder, Word};
    let mut b = ProgramBuilder::new();
    b.setthick(n as Word);
    emit_divergent_body(&mut b, n);
    b.halt();
    b.build().expect("workload assembles")
}

/// The recurrence shared by every `divergent_*` probe leg: sixteen
/// iterations of moving-cut `Slt`/`Sel`/fold plus one shared-sum
/// multioperation per iteration (see [`divergent_program`]). The caller
/// provides the thickness (`setthick`, the variant's fixed width, a
/// `spawn`, or the SPMD thread count) and the epilogue (`halt`/`sjoin`).
fn emit_divergent_body(b: &mut tcf_isa::ProgramBuilder, n: usize) {
    use tcf_isa::instr::MultiKind;
    use tcf_isa::reg::{r, Reg, SpecialReg};
    use tcf_isa::{AluOp, Word};
    let cut_step = (n / 24 + 7) as Word;
    let cut_base = (n / 3 + 11) as Word;
    b.mfs(r(1), SpecialReg::Tid); // r1 = lane id (affine, stays affine)
    b.ldi(r(3), 0); // r3 = accumulator (grows one run per iteration)
    b.ldi(r(4), 0); // r4 = loop counter (uniform)
    b.label("loop");
    b.alu(AluOp::Mul, r(7), r(4), cut_step);
    b.alu(AluOp::Add, r(7), r(7), cut_base); // r7 = this iteration's cut
    b.alu(AluOp::Slt, r(2), r(1), r(7)); // r2 = lane mask (2 runs)
    b.sel(r(6), r(2), r(1), r(3)); // masked select: id below the cut
    b.alu(AluOp::Add, r(3), r(3), r(6)); // piecewise fold of the rejoin
    b.multiop(MultiKind::Add, Reg::ZERO, 64, r(3)); // sum @ 64, closed form
    b.alu(AluOp::Add, r(4), r(4), 1);
    b.alu(AluOp::Slt, r(8), r(4), 16);
    b.bnez(r(8), "loop");
}

/// The divergent recurrence without a `setthick` prologue, for the
/// variants whose thickness is fixed by the machine rather than the
/// program: `FixedThickness { width: n }` (one vector flow) and
/// `SingleOperation` (`n` SPMD unit flows reading their rank as `tid`).
pub fn divergent_program_preset(n: usize) -> Program {
    use tcf_isa::ProgramBuilder;
    let mut b = ProgramBuilder::new();
    emit_divergent_body(&mut b, n);
    b.halt();
    b.build().expect("workload assembles")
}

/// Spawn-based divergent kernel of the Multi-instruction probe legs: the
/// initial flow spawns `n` asynchronous threads that each run the
/// recurrence on their spawn index and `sjoin`. The spawn materializes at
/// most one compressed *block flow* per group (lanes `g, g+G, …` sharing
/// one pc and affine `tid`), so spawning 10^8 threads is O(groups); the
/// quantum scheduler then splits windows of at most `T_p` lanes off each
/// block per pass, keeping per-step cost flat in `n`.
pub fn divergent_async_program(n: usize) -> Program {
    use tcf_isa::{ProgramBuilder, Word};
    let mut b = ProgramBuilder::new();
    b.spawn(n as Word, "task");
    b.halt();
    b.label("task");
    emit_divergent_body(&mut b, n);
    b.sjoin();
    b.build().expect("workload assembles")
}

/// NUMA-stream probe: a `1/slots` bunch spinning a counter for `iters`
/// iterations (3 instructions each), so each synchronous step carries
/// `slots` sequential instructions of the stream. Every instruction in
/// the loop is a compute unit, so a whole step reaches the timing layer
/// as one coalesced `ComputeRun` span per bunch — O(1) timing work per
/// step no matter how many slots it carries. Run under
/// `ConfigurableSingleOperation`, whose per-group bunching absorbs the
/// group's SPMD siblings into one leader stream per group (bunch length
/// = group size); the scaling probe stretches `iters`, not the machine,
/// so the pair measures steady-state stream throughput on identical
/// hardware.
pub fn divergent_numa_program(slots: usize, iters: usize) -> Program {
    use tcf_isa::reg::r;
    use tcf_isa::{AluOp, ProgramBuilder, Word};
    let iters = iters.max(4) as Word;
    let mut b = ProgramBuilder::new();
    b.numa(slots as Word);
    b.ldi(r(1), 0);
    b.label("loop");
    b.alu(AluOp::Add, r(1), r(1), 1);
    b.alu(AluOp::Slt, r(2), r(1), iters);
    b.bnez(r(2), "loop");
    b.endnuma();
    b.halt();
    b.build().expect("workload assembles")
}

impl Workload {
    /// Every workload, in report order.
    pub const ALL: [Workload; 7] = [
        Workload::ThickPram,
        Workload::ThinNuma,
        Workload::MixedMultitasking,
        Workload::BroadcastStride,
        Workload::LaneIdReduction,
        Workload::BranchyDivergence,
        Workload::DivergentCompressed,
    ];

    /// Stable identifier used in bench output and `BENCH_hotpath.json`.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ThickPram => "thick_pram_flow",
            Workload::ThinNuma => "thin_numa_flow",
            Workload::MixedMultitasking => "mixed_multitasking",
            Workload::BroadcastStride => "broadcast_stride_sweep",
            Workload::LaneIdReduction => "lane_id_reduction",
            Workload::BranchyDivergence => "branchy_divergence",
            Workload::DivergentCompressed => "divergent_compressed",
        }
    }

    /// Compiles the workload's program (do this once, outside timing).
    pub fn program(self) -> Program {
        match self {
            Workload::ThickPram => tcf_lang::compile(&format!(
                "shared int a[1024] @ {};
                 void main() {{
                     #1024;
                     int i = 0;
                     while (i < 24) {{
                         a[.] = a[.] + .;
                         i = i + 1;
                     }}
                 }}",
                workloads::A_BASE
            ))
            .expect("workload compiles"),
            Workload::ThinNuma => workloads::tcf_numa_seq(400, 8),
            Workload::MixedMultitasking => workloads::task_program(150),
            Workload::BroadcastStride => tcf_lang::compile(&format!(
                "shared int a[2048] @ {};
                 shared int b[1024] @ {};
                 void main() {{
                     #1024;
                     int i = 0;
                     while (i < 16) {{
                         a[2 * .] = a[2 * .] + i;
                         b[.] = a[2 * .];
                         i = i + 1;
                     }}
                 }}",
                workloads::A_BASE,
                workloads::B_BASE
            ))
            .expect("workload compiles"),
            Workload::LaneIdReduction => tcf_lang::compile(&format!(
                "shared int sum @ 64;
                 shared int out[1024] @ {};
                 void main() {{
                     #1024;
                     int i = 0;
                     while (i < 8) {{
                         out[.] = prefix(sum, MPADD, .);
                         i = i + 1;
                     }}
                 }}",
                workloads::C_BASE
            ))
            .expect("workload compiles"),
            // tce has no per-lane ternary, so this one is built directly:
            // a parity-driven select/accumulate recurrence. The opening
            // `and` of the affine lane ids falls outside the affine
            // closure algebra, decaying every derived register to explicit
            // lanes — from then on the loop body (two `sel`s and three
            // lane-wise ALU ops per iteration) runs entirely on the
            // per-lane fallback path.
            Workload::BranchyDivergence => {
                use tcf_isa::reg::{r, SpecialReg};
                use tcf_isa::{AluOp, ProgramBuilder};
                let mut b = ProgramBuilder::new();
                b.setthick(1024);
                b.mfs(r(1), SpecialReg::Tid); // r1 = lane id
                b.alu(AluOp::And, r(2), r(1), 1); // r2 = parity (decays)
                b.ldi(r(3), 0); // r3 = accumulator
                b.ldi(r(4), 0); // r4 = loop counter (uniform)
                b.label("loop");
                b.sel(r(6), r(2), r(1), r(3)); // odd parity: take id, else acc
                b.alu(AluOp::Add, r(3), r(3), r(6));
                b.alu(AluOp::Xor, r(2), r(2), 1); // flip parity
                b.alu(AluOp::Sub, r(5), r(3), r(1));
                b.sel(r(3), r(2), r(5), r(3)); // new-odd lanes: acc -= id
                b.alu(AluOp::Add, r(4), r(4), 1);
                b.alu(AluOp::Slt, r(7), r(4), 16);
                b.bnez(r(7), "loop");
                b.st(r(3), r(1), workloads::C_BASE as tcf_isa::Word);
                b.halt();
                b.build().expect("workload assembles")
            }
            Workload::DivergentCompressed => divergent_program(DIVERGENT_THICKNESS),
        }
    }

    /// Builds a machine ready to run (tasks spawned, inputs in place).
    pub fn build(self, program: &Program) -> TcfMachine {
        let config = crate::small_config();
        let mut m = TcfMachine::new(config, Variant::SingleInstruction, program.clone());
        if self == Workload::MixedMultitasking {
            let entry = program.label("task").expect("task label");
            for i in 0..12 {
                // Thicknesses cycle 1, 4, 16: thin, medium, thick tasks
                // competing for the same groups.
                let thickness = [1usize, 4, 16][i % 3];
                m.spawn_task(entry, thickness).expect("spawn task");
            }
        }
        m
    }

    /// Runs a freshly [`build`](Workload::build)-t machine to completion.
    pub fn run(self, m: &mut TcfMachine) -> RunSummary {
        m.run(10_000_000).expect("workload halts")
    }
}

/// Throughput measurement for one workload.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Simulated machine steps per run.
    pub steps: u64,
    /// Issued units (compute + memory + fetch) per run.
    pub instrs: u64,
    /// Best wall-clock seconds over the repeats (machine build excluded).
    pub elapsed_sec: f64,
}

impl Measurement {
    /// Simulated steps per host second.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.elapsed_sec
    }

    /// Issued units per host second.
    pub fn instrs_per_sec(&self) -> f64 {
        self.instrs as f64 / self.elapsed_sec
    }
}

/// Minimum wall-clock time one timed sample must cover. The fastest
/// workload completes in ~100µs, where scheduler jitter alone swings a
/// single run by 2×; batching runs until a sample spans at least this
/// long keeps the reported rates stable enough for the CI regression
/// diff against `BENCH_hotpath.json`.
const MIN_SAMPLE_SECS: f64 = 0.05;

/// Measures one workload: one warmup run calibrates how many program
/// executions one sample needs to span [`MIN_SAMPLE_SECS`], then
/// `repeats` batched samples run and the fastest average per-run time is
/// kept (criterion-style minimum over batch means — the least-perturbed
/// sample of a deterministic simulation). Steps and instruction counts
/// are per run, not per batch.
pub fn measure(w: Workload, repeats: usize) -> Measurement {
    let program = w.program();
    measure_with(&|| w.build(&program), repeats)
}

/// Measures an arbitrary single-flow program on the small machine with
/// the same harness as [`measure`] — used for the
/// `divergent_compressed_100x` thickness-scaling probe, which re-runs
/// [`divergent_program`] at 100× [`DIVERGENT_THICKNESS`].
pub fn measure_program(program: &Program, repeats: usize) -> Measurement {
    measure_with(
        &|| {
            TcfMachine::new(
                crate::small_config(),
                Variant::SingleInstruction,
                program.clone(),
            )
        },
        repeats,
    )
}

fn measure_with(build: &dyn Fn() -> TcfMachine, repeats: usize) -> Measurement {
    measure_runs(build, &|m| run_capped(m, None), repeats)
}

/// The calibrated-batch harness shared by every probe: one warmup run
/// calibrates how many executions one sample needs to span
/// [`MIN_SAMPLE_SECS`], then `repeats` batched samples run and the
/// fastest mean per-run time is kept (see [`measure`]). The `run`
/// closure executes one freshly built machine and reports its
/// (steps, issued-units) counts.
fn measure_runs(
    build: &dyn Fn() -> TcfMachine,
    run: &dyn Fn(&mut TcfMachine) -> (u64, u64),
    repeats: usize,
) -> Measurement {
    let ((steps, instrs), iters) = {
        let mut m = build();
        let start = Instant::now();
        let counts = run(&mut m);
        let once = start.elapsed().as_secs_f64().max(1e-9);
        (counts, (MIN_SAMPLE_SECS / once).ceil().max(1.0) as usize)
    };
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        // One sample averages `iters` back-to-back runs; machine builds
        // stay outside the per-run timers.
        let mut total = 0.0;
        for _ in 0..iters {
            let mut m = build();
            let start = Instant::now();
            run(&mut m);
            total += start.elapsed().as_secs_f64();
        }
        best = best.min(total / iters as f64);
    }
    Measurement {
        steps,
        instrs,
        elapsed_sec: best.max(f64::MIN_POSITIVE),
    }
}

/// Runs a probe machine to completion — or to `cap` steps for the legs
/// whose full runs are unaffordable, where hitting the step budget is the
/// expected outcome (the sample measures steady-state throughput), not an
/// error.
fn run_capped(m: &mut TcfMachine, cap: Option<u64>) -> (u64, u64) {
    use tcf_core::TcfFault;
    match m.run(cap.unwrap_or(10_000_000)) {
        Ok(s) => (s.steps, s.machine.issued()),
        Err(e) if cap.is_some() && matches!(e.fault, TcfFault::StepBudgetExhausted { .. }) => {
            (m.steps_executed(), m.stats().issued())
        }
        Err(e) => panic!("probe faulted: {e:?}"),
    }
}

/// One family of the per-variant `divergent_*` scaling legs: the same
/// divergent recurrence expressed in each remaining execution variant's
/// natural idiom (the `SingleInstruction` legs are `divergent_compressed`
/// and its `_100x` twin above). Each family is measured at a baseline
/// size and at 100× it; `tools/bench_gate.py` asserts every pair's rate
/// stays within 2×, pinning the flat-cost-in-thickness claim on all six
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantProbe {
    /// `Balanced { bound: 64 }` on the `setthick` recurrence. The step
    /// cap keeps both legs inside the same partially executed thick
    /// instruction, which each step resumes at its stored next-operation
    /// boundary without decaying to lanes — per-step cost is O(bound),
    /// independent of thickness. Step-capped (a full 10^8-lane run walks
    /// every lane); rate compared as steps/sec.
    Balanced,
    /// `MultiInstruction`: `spawn n` threads materialize as O(groups)
    /// compressed block flows (affine `tid`, shared pc), and the quantum
    /// scheduler splits at most `T_p`-lane windows off each block per
    /// step — per-step cost is O(P·T_p), independent of `n`. Step-capped;
    /// rate compared as steps/sec.
    Async,
    /// `ConfigurableSingleOperation` entering a `numa` stream of `n`
    /// total sequential instructions (one bunch per group, bunch length =
    /// group size = 16). The scaling leg stretches the stream 100×, not
    /// the machine: per-step the leaders carry the same 16-instruction
    /// slices, reaching the timing layer as coalesced `ComputeRun` spans,
    /// so per-instruction cost must not grow with stream length. Runs to
    /// completion; compared as instrs/sec.
    Numa,
    /// `FixedThickness { width: n }`: the machine-fixed vector width runs
    /// the recurrence with no `setthick` prologue; per-step cost is
    /// O(#mask runs). Runs to completion; compared as steps/sec.
    Fixed,
    /// `SingleOperation`: the recurrence as `n` SPMD unit flows reading
    /// their rank as `tid`. Thickness here *is* the machine size `P·T_p`
    /// (the baseline variant materializes every thread — the limitation
    /// the compressed variants remove), so sizes stay small (10^3 and
    /// 10^5) and the pair is compared as instrs/sec.
    Spmd,
}

impl VariantProbe {
    /// Every probe family, in report order.
    pub const ALL: [VariantProbe; 5] = [
        VariantProbe::Balanced,
        VariantProbe::Async,
        VariantProbe::Numa,
        VariantProbe::Fixed,
        VariantProbe::Spmd,
    ];

    /// Stable `BENCH_hotpath.json` key of the baseline leg.
    pub fn name(self) -> &'static str {
        match self {
            VariantProbe::Balanced => "divergent_balanced",
            VariantProbe::Async => "divergent_async",
            VariantProbe::Numa => "divergent_numa",
            VariantProbe::Fixed => "divergent_fixed",
            VariantProbe::Spmd => "divergent_spmd",
        }
    }

    /// Stable `BENCH_hotpath.json` key of the 100×-size leg.
    pub fn name_100x(self) -> &'static str {
        match self {
            VariantProbe::Balanced => "divergent_balanced_100x",
            VariantProbe::Async => "divergent_async_100x",
            VariantProbe::Numa => "divergent_numa_100x",
            VariantProbe::Fixed => "divergent_fixed_100x",
            VariantProbe::Spmd => "divergent_spmd_100x",
        }
    }

    /// Baseline problem size (thickness / spawn count / bunch length /
    /// SPMD thread count); the `_100x` leg runs 100× this.
    pub fn base_size(self) -> usize {
        match self {
            // SingleOperation materializes one unit flow per hardware
            // thread, so its size is the machine size — kept small by
            // design (the limitation the compressed variants remove;
            // docs/PERFORMANCE.md).
            VariantProbe::Spmd => 1_000,
            // Total sequential instructions in the bunch streams; the
            // machine stays the small one.
            VariantProbe::Numa => 10_000,
            _ => DIVERGENT_THICKNESS,
        }
    }

    /// Step cap for the legs whose full runs are unaffordable (Balanced
    /// retires `bound` lanes per processor per step; async retires
    /// `P·T_p` spawned lanes per step — running 10^8 lanes dry would take
    /// ~10^6 steps). Both legs of a pair use the same cap, so their step
    /// rates are directly comparable.
    fn cap(self) -> Option<u64> {
        match self {
            VariantProbe::Balanced => Some(4_000),
            VariantProbe::Async => Some(2_000),
            _ => None,
        }
    }

    fn variant(self, n: usize) -> Variant {
        match self {
            VariantProbe::Balanced => Variant::Balanced { bound: 64 },
            VariantProbe::Async => Variant::MultiInstruction,
            VariantProbe::Numa => Variant::ConfigurableSingleOperation,
            VariantProbe::Fixed => Variant::FixedThickness { width: n },
            VariantProbe::Spmd => Variant::SingleOperation,
        }
    }

    fn config(self, n: usize) -> MachineConfig {
        let mut c = crate::small_config();
        if self == VariantProbe::Spmd {
            // SingleOperation's thickness IS the machine size: one unit
            // flow per hardware thread, `tid` = rank.
            c.threads_per_group = n / c.groups;
        }
        c
    }

    fn program(self, n: usize) -> Program {
        match self {
            VariantProbe::Balanced => divergent_program(n),
            VariantProbe::Async => divergent_async_program(n),
            // One bunch per group (bunch length = T_p), streams totalling
            // ~n instructions: 4 leaders x 3 instructions per iteration.
            VariantProbe::Numa => {
                let c = crate::small_config();
                divergent_numa_program(c.threads_per_group, n / (3 * c.groups))
            }
            VariantProbe::Fixed | VariantProbe::Spmd => divergent_program_preset(n),
        }
    }

    /// Builds the machine for one leg (`scale` is 1 or 100).
    pub fn build(self, scale: usize) -> TcfMachine {
        let n = self.base_size() * scale;
        TcfMachine::new(self.config(n), self.variant(n), self.program(n))
    }

    /// Measures one leg with the calibrated-batch harness, honoring the
    /// family's step cap.
    pub fn measure(self, scale: usize, repeats: usize) -> Measurement {
        let n = self.base_size() * scale;
        let program = self.program(n);
        let variant = self.variant(n);
        let config = self.config(n);
        measure_runs(
            &|| TcfMachine::new(config.clone(), variant, program.clone()),
            &|m| run_capped(m, self.cap()),
            repeats,
        )
    }
}

/// Observability configuration for the `obs_overhead_*` probes, which
/// re-run [`Workload::ThickPram`] under each mode to price the telemetry
/// pipeline (docs/OBSERVABILITY.md "Measured overhead"). CI gates the
/// `Off` mode at ≤5% below the plain `thick_pram_flow` rate: recording
/// hooks that are compiled in but disabled must stay (nearly) free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Sinks disabled (the default): hooks early-return.
    Off,
    /// Cycle trace and flow-event recording on, batch export afterwards.
    Record,
    /// Recording on plus a live streaming subscriber: a cursor drain
    /// appends `tcf-obs-stream/v2` NDJSON every `DRAIN_INTERVAL_STEPS`
    /// machine steps (plus a final catch-up), as `repro --stream` does.
    Stream,
}

impl ObsMode {
    /// Every mode, in report order.
    pub const ALL: [ObsMode; 3] = [ObsMode::Off, ObsMode::Record, ObsMode::Stream];

    /// Stable identifier used in `BENCH_hotpath.json`.
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Off => "obs_overhead_off",
            ObsMode::Record => "obs_overhead_record",
            ObsMode::Stream => "obs_overhead_stream",
        }
    }

    fn build(self, program: &Program) -> TcfMachine {
        let mut m = Workload::ThickPram.build(program);
        if self != ObsMode::Off {
            m.set_tracing(true);
            m.set_observing(true);
        }
        m
    }

    /// Runs the machine to completion under this mode; the streamed NDJSON
    /// document is produced (and discarded) inside the timed region, like
    /// a real subscriber would consume it.
    fn run(self, m: &mut TcfMachine) -> (u64, u64) {
        match self {
            ObsMode::Stream => {
                let mut cursor = StreamCursor::default();
                let mut doc = header_line();
                let mut steps = 0u64;
                loop {
                    let more = m.step().expect("workload halts");
                    steps += 1;
                    if steps.is_multiple_of(DRAIN_INTERVAL_STEPS) {
                        drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
                    }
                    if !more {
                        break;
                    }
                }
                drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
                std::hint::black_box(doc.len());
            }
            ObsMode::Off | ObsMode::Record => {
                m.run(10_000_000).expect("workload halts");
            }
        }
        (m.steps_executed(), m.stats().issued())
    }
}

/// Measures the observability-overhead probe for one mode, with the same
/// calibrated-batch harness as [`measure`].
pub fn measure_obs(mode: ObsMode, repeats: usize) -> Measurement {
    let program = Workload::ThickPram.program();
    let (steps, instrs, iters) = {
        let mut m = mode.build(&program);
        let start = Instant::now();
        let (steps, instrs) = mode.run(&mut m);
        let once = start.elapsed().as_secs_f64().max(1e-9);
        (
            steps,
            instrs,
            (MIN_SAMPLE_SECS / once).ceil().max(1.0) as usize,
        )
    };
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let mut total = 0.0;
        for _ in 0..iters {
            let mut m = mode.build(&program);
            let start = Instant::now();
            mode.run(&mut m);
            total += start.elapsed().as_secs_f64();
        }
        best = best.min(total / iters as f64);
    }
    Measurement {
        steps,
        instrs,
        elapsed_sec: best.max(f64::MIN_POSITIVE),
    }
}

/// Renders the `BENCH_hotpath.json` document (`tcf-bench-hotpath/v1`):
/// steps/sec and instrs/sec for every workload in [`Workload::ALL`],
/// plus the [`ObsMode`] overhead probes.
pub fn bench_json(repeats: usize) -> String {
    let mut entries: Vec<(&'static str, Measurement)> = Vec::new();
    for w in Workload::ALL {
        entries.push((w.name(), measure(w, repeats)));
    }
    // Thickness-scaling probe: the divergent-compressed recurrence again
    // at 100× the thickness. Per-step cost is O(#mask runs), so the step
    // rate must stay flat — `tools/bench_gate.py` asserts it lands within
    // 2× of the baseline `divergent_compressed` rate.
    let program_100x = divergent_program(100 * DIVERGENT_THICKNESS);
    entries.push((
        "divergent_compressed_100x",
        measure_program(&program_100x, repeats),
    ));
    // The same recurrence in every remaining variant's idiom, each at a
    // baseline and a 100× size — together with the two entries above,
    // one flat-cost pair per execution variant. The gate compares
    // steps/sec for the thick-instruction legs and instrs/sec for the
    // SPMD-shaped ones (see [`VariantProbe`]).
    for probe in VariantProbe::ALL {
        entries.push((probe.name(), probe.measure(1, repeats)));
        entries.push((probe.name_100x(), probe.measure(100, repeats)));
    }
    for mode in ObsMode::ALL {
        entries.push((mode.name(), measure_obs(mode, repeats)));
    }
    let mut out = String::from("{\n  \"schema\": \"tcf-bench-hotpath/v1\",\n  \"workloads\": {\n");
    for (i, (name, m)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"steps\": {},\n      \"instrs\": {},\n      \
             \"elapsed_sec\": {:.6},\n      \"steps_per_sec\": {:.1},\n      \
             \"instrs_per_sec\": {:.1}\n    }}{}\n",
            name,
            m.steps,
            m.instrs,
            m.elapsed_sec,
            m.steps_per_sec(),
            m.instrs_per_sec(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_halt_and_count() {
        for w in Workload::ALL {
            let program = w.program();
            let mut m = w.build(&program);
            let s = w.run(&mut m);
            assert!(s.halted, "{} did not halt", w.name());
            assert!(s.steps > 0, "{} executed no steps", w.name());
            assert!(s.machine.issued() > 0, "{} issued nothing", w.name());
        }
    }

    #[test]
    fn thick_workload_computes_the_loop() {
        let w = Workload::ThickPram;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // a[j] starts 0 and gains j per iteration, 24 iterations.
        for j in [0usize, 1, 513, 1023] {
            assert_eq!(m.peek(workloads::A_BASE + j).unwrap(), 24 * j as i64);
        }
    }

    #[test]
    fn broadcast_stride_workload_computes_the_sweep() {
        let w = Workload::BroadcastStride;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // a[2j] gains i per iteration i: sum 0..15 = 120; b[j] mirrors it.
        for j in [0usize, 1, 511, 1023] {
            assert_eq!(m.peek(workloads::A_BASE + 2 * j).unwrap(), 120);
            assert_eq!(m.peek(workloads::B_BASE + j).unwrap(), 120);
            // Odd elements of `a` are never touched by the stride-2 sweep.
            assert_eq!(m.peek(workloads::A_BASE + 2 * j + 1).unwrap(), 0);
        }
    }

    #[test]
    fn lane_id_reduction_computes_prefixes() {
        let w = Workload::LaneIdReduction;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // One round adds sum(0..1023) = 523776; lane j's final (8th-round)
        // prefix is 7 rounds' total plus the ids below it.
        let round: i64 = 1023 * 1024 / 2;
        for j in [0usize, 1, 513, 1023] {
            let below = (j as i64) * (j as i64 - 1) / 2;
            assert_eq!(
                m.peek(workloads::C_BASE + j).unwrap(),
                7 * round + below,
                "out[{j}] wrong"
            );
        }
        assert_eq!(m.peek(64).unwrap(), 8 * round);
    }

    #[test]
    fn branchy_divergence_computes_the_recurrence() {
        let w = Workload::BranchyDivergence;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // Mirror of the parity recurrence the program runs per lane.
        for j in [0usize, 1, 2, 513, 1022, 1023] {
            let id = j as i64;
            let (mut par, mut acc) = (id & 1, 0i64);
            for _ in 0..16 {
                acc += if par != 0 { id } else { acc };
                par ^= 1;
                if par != 0 {
                    acc -= id;
                }
            }
            assert_eq!(m.peek(workloads::C_BASE + j).unwrap(), acc, "lane {j}");
        }
    }

    /// Per-lane mirror of the divergent-compressed recurrence: lane `j`
    /// below iteration `i`'s cut takes its id, every lane folds into the
    /// accumulator, and every iteration contributes all accumulators to
    /// the shared sum (wrapping word arithmetic throughout).
    fn divergent_mirror(n: usize) -> i64 {
        let cut_step = (n / 24 + 7) as i64;
        let cut_base = (n / 3 + 11) as i64;
        let mut sum = 0i64;
        for j in 0..n {
            let id = j as i64;
            let mut acc = 0i64;
            for i in 0..16 {
                let cut = (i as i64).wrapping_mul(cut_step).wrapping_add(cut_base);
                let pick = if id < cut { id } else { acc };
                acc = acc.wrapping_add(pick);
                sum = sum.wrapping_add(acc);
            }
        }
        sum
    }

    #[test]
    fn divergent_compressed_computes_the_recurrence() {
        // Small instance first (cheap to mirror), then the full workload.
        for n in [4096usize, DIVERGENT_THICKNESS] {
            let program = divergent_program(n);
            let mut m = TcfMachine::new(crate::small_config(), Variant::SingleInstruction, program);
            m.run(10_000_000).expect("workload halts");
            assert_eq!(m.peek(64).unwrap(), divergent_mirror(n), "thickness {n}");
        }
    }

    #[test]
    fn divergent_compressed_stays_compressed() {
        let w = Workload::DivergentCompressed;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // The whole run must stay on the masked/piecewise closed-form
        // path: divergence is absorbed by lane masks (mask hits, zero
        // decays of any kind), never by materializing 10^6 lanes.
        let decay = m.thick_decay();
        assert_eq!(decay.total(), 0, "workload decayed: {decay:?}");
        assert!(
            m.engine_counters().mask_hits > 0,
            "workload never took the masked path: {:?}",
            m.engine_counters()
        );
        assert_eq!(
            m.engine_counters().mask_misses,
            0,
            "workload fell off the masked path: {:?}",
            m.engine_counters()
        );
    }

    /// The O(#runs) claim, measured: stepping the recurrence at 64× the
    /// thickness must not cost anywhere near 64× the time. A loose 8×
    /// envelope keeps the assertion robust on noisy CI hosts — the real
    /// ratio is near 1, and a per-lane regression would show up as ~64×.
    #[test]
    fn divergent_compressed_step_cost_is_flat_in_thickness() {
        let time_run = |n: usize| {
            let program = divergent_program(n);
            let mut m = TcfMachine::new(crate::small_config(), Variant::SingleInstruction, program);
            let start = std::time::Instant::now();
            m.run(10_000_000).expect("workload halts");
            start.elapsed().as_secs_f64()
        };
        time_run(1 << 14); // warmup
        let base = time_run(1 << 14).max(1e-6);
        let scaled = time_run(1 << 20);
        assert!(
            scaled < 8.0 * base,
            "64x thickness cost {scaled:.6}s vs {base:.6}s at baseline — not flat"
        );
    }

    /// Bit-exactness of the per-variant probe programs against the
    /// per-lane mirror, at mirrorable sizes: the fixed-width vector leg,
    /// the SPMD leg (thickness = machine size) and the spawn-based async
    /// leg all fold the same per-thread recurrence into the shared sum.
    #[test]
    fn variant_probe_programs_compute_the_recurrence() {
        let n = 4096;
        let mut m = TcfMachine::new(
            crate::small_config(),
            Variant::FixedThickness { width: n },
            divergent_program_preset(n),
        );
        m.run(10_000_000).expect("fixed probe halts");
        assert_eq!(m.peek(64).unwrap(), divergent_mirror(n), "fixed");

        // SingleOperation: one unit flow per hardware thread (64 on the
        // small machine), each reading its rank as `tid`.
        let n = 64;
        let mut m = TcfMachine::new(
            crate::small_config(),
            Variant::SingleOperation,
            divergent_program_preset(n),
        );
        m.run(10_000_000).expect("spmd probe halts");
        assert_eq!(m.peek(64).unwrap(), divergent_mirror(n), "spmd");

        // MultiInstruction: 64 spawned threads whose `tid`s are exactly
        // the spawn indices 0..64 (distributed round-robin over groups).
        let mut m = TcfMachine::new(
            crate::small_config(),
            Variant::MultiInstruction,
            divergent_async_program(n),
        );
        m.run(10_000_000).expect("async probe halts");
        assert_eq!(m.peek(64).unwrap(), divergent_mirror(n), "async");
    }

    /// The Balanced leg never decays: each step resumes the partially
    /// executed thick instruction at its `bound` boundary on the
    /// compressed representation.
    #[test]
    fn balanced_probe_resumes_without_decay() {
        let mut m = VariantProbe::Balanced.build(1);
        let (steps, instrs) = run_capped(&mut m, Some(500));
        assert_eq!(steps, 500, "cap not honored");
        assert!(instrs > 0);
        let decay = m.thick_decay();
        assert_eq!(decay.total(), 0, "balanced run decayed: {decay:?}");
    }

    /// Spawning 10^6 asynchronous threads materializes O(groups) block
    /// flows plus at most a few split-off windows in flight — never 10^6
    /// unit flows.
    #[test]
    fn async_probe_spawn_stays_block_compressed() {
        let mut m = VariantProbe::Async.build(1);
        let (steps, _) = run_capped(&mut m, Some(200));
        assert_eq!(steps, 200, "cap not honored");
        let live = m.live_flows();
        assert!(live < 64, "spawn materialized {live} flows");
    }

    /// The NUMA leg streams 16 sequential instructions per bunch leader
    /// per synchronous step: the baseline's ~10^4 total instructions
    /// finish in ~160 steps (2500 per leader / 16 per step), not one
    /// step per instruction.
    #[test]
    fn numa_probe_streams_with_full_bunches() {
        let mut m = VariantProbe::Numa.build(1);
        let s = m.run(10_000_000).expect("numa probe halts");
        assert!(s.halted, "numa probe did not halt");
        assert!(
            (100..400).contains(&s.steps),
            "bunch stream took {} steps",
            s.steps
        );
        assert!(
            s.machine.issued() > 8_000,
            "bunch stream too short: {} units",
            s.machine.issued()
        );
    }

    /// Full-run legs halt; step-capped legs reach their cap — every leg
    /// produces nonzero throughput numbers at baseline size.
    #[test]
    fn variant_probes_measure_cleanly() {
        for probe in VariantProbe::ALL {
            let mut m = probe.build(1);
            let (steps, instrs) = run_capped(&mut m, probe.cap().map(|_| 100));
            assert!(steps > 0, "{} ran no steps", probe.name());
            assert!(instrs > 0, "{} issued nothing", probe.name());
        }
    }

    #[test]
    fn bench_json_contains_all_workloads() {
        let json = bench_json(1);
        for w in Workload::ALL {
            assert!(json.contains(w.name()), "missing {}", w.name());
        }
        assert!(json.contains("divergent_compressed_100x"));
        for probe in VariantProbe::ALL {
            assert!(json.contains(probe.name()), "missing {}", probe.name());
            assert!(
                json.contains(probe.name_100x()),
                "missing {}",
                probe.name_100x()
            );
        }
        for mode in ObsMode::ALL {
            assert!(json.contains(mode.name()), "missing {}", mode.name());
        }
        assert!(json.contains("steps_per_sec"));
        assert!(json.contains("instrs_per_sec"));
    }

    #[test]
    fn obs_modes_execute_the_same_simulation() {
        let program = Workload::ThickPram.program();
        let mut counts = Vec::new();
        for mode in ObsMode::ALL {
            let mut m = mode.build(&program);
            let (steps, instrs) = mode.run(&mut m);
            assert!(steps > 0 && instrs > 0, "{} ran nothing", mode.name());
            counts.push((steps, instrs));
            // The simulation result is identical no matter what the
            // telemetry pipeline observes.
            assert_eq!(m.peek(workloads::A_BASE + 513).unwrap(), 24 * 513);
            // Recording modes actually captured events; Off stayed empty.
            let recorded = !m.obs().events().is_empty();
            assert_eq!(recorded, mode != ObsMode::Off, "{}", mode.name());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
