//! Hot-path throughput probes: the fixed workload set measured by the
//! `step_rate` criterion bench and exported by `repro bench-json`.
//!
//! Seven workloads cover the simulator's steady states (see
//! `docs/PERFORMANCE.md`):
//!
//! * **thick_pram_flow** — one flow of thickness 1024 looping over a
//!   shared array: stresses per-lane operand access and the shared-memory
//!   resolution path (fully affine: lane ids, unit-stride addresses).
//! * **thin_numa_flow** — a thickness-1 NUMA bunch spinning a counter:
//!   stresses instruction fetch/dispatch with no memory pressure.
//! * **mixed_multitasking** — a dozen tasks of mixed thickness scheduled
//!   against each other: stresses flow management plus both regimes at
//!   once.
//! * **broadcast_stride_sweep** — a thick flow broadcasting a uniform
//!   value through a stride-2 array sweep: stresses the non-unit-stride
//!   bulk memory path and affine load-to-store forwarding.
//! * **lane_id_reduction** — a thick flow folding its lane ids into a
//!   multiprefix accumulator: stresses the bulk multioperation path
//!   (closed-form combining) seeded from a compressed lane-id read.
//! * **branchy_divergence** — a `Sel`-heavy parity recurrence whose first
//!   instruction (`and` on the lane ids) escapes the affine algebra, so
//!   every register decays to explicit lanes: stresses the per-lane
//!   fallback (the structure-of-arrays SIMD kernels of `tcf_core::lanes`).
//! * **divergent_compressed** — a `Sel`-heavy threshold recurrence at
//!   thickness 10^6 whose per-iteration cut point moves through the lane
//!   range (never aligned to a fragment boundary), so every step is
//!   genuinely divergent yet stays compressed under run-length lane
//!   masks: stresses the masked/piecewise closed-form path (mask
//!   classification, masked `Sel`, piecewise ALU, and the rank-ordered
//!   masked multioperation chain). Per-step cost is O(#mask runs), not
//!   O(thickness) — `bench_json` re-measures it at 100× the thickness
//!   (10^8 lanes) as `divergent_compressed_100x`, and `tools/bench_gate.py`
//!   asserts the two step rates stay within 2×.
//!
//! All run on the small machine (`P = 4`, `T_p = 16`) so a probe
//! completes in milliseconds; throughput is reported as simulated machine
//! steps and issued units ("instrs") per host second.

use std::time::Instant;

use tcf_core::{TcfMachine, Variant};
use tcf_isa::program::Program;
use tcf_obs::stream::{drain_ndjson, header_line, DRAIN_INTERVAL_STEPS};
use tcf_obs::StreamCursor;
use tcf_pram::RunSummary;

use crate::workloads;

/// One of the measured workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Thick PRAM-mode flow (thickness 1024 array loop).
    ThickPram,
    /// Thin NUMA-mode flow (thickness-1 counter loop).
    ThinNuma,
    /// Mixed-thickness multitasking (12 concurrent tasks).
    MixedMultitasking,
    /// Broadcast plus stride-2 array sweep (thickness 1024).
    BroadcastStride,
    /// Lane-id multiprefix reduction (thickness 1024).
    LaneIdReduction,
    /// Sel-heavy parity recurrence on decayed lanes (thickness 1024).
    BranchyDivergence,
    /// Sel-heavy threshold recurrence under lane masks (thickness 10^6).
    DivergentCompressed,
}

/// Thickness of the [`Workload::DivergentCompressed`] probe. The
/// `divergent_compressed_100x` scaling probe runs the same program at
/// 100× this (10^8 lanes, still below `tcf_core`'s `MAX_THICKNESS`).
pub const DIVERGENT_THICKNESS: usize = 1_000_000;

/// Builds the divergent-compressed recurrence at an arbitrary thickness
/// `n` — the body of [`Workload::DivergentCompressed`] and its 100×
/// scaling probe. Sixteen iterations; iteration `i` compares the affine
/// lane ids against the moving cut `i·(n/24 + 7) + n/3 + 11` (coprime-ish
/// steps, so the cut never lands on a fragment boundary), folds the
/// masked `Sel` rejoin into a `Segments` accumulator (one extra run per
/// iteration, bounded well below `MASK_RUN_BUDGET`), and contributes
/// every lane to one shared sum word — a rank-ordered chain of
/// zero-astride bulk multioperations that shared memory combines in
/// closed form. No instruction in the loop costs more than O(#mask runs).
pub fn divergent_program(n: usize) -> Program {
    use tcf_isa::instr::MultiKind;
    use tcf_isa::reg::{r, Reg, SpecialReg};
    use tcf_isa::{AluOp, ProgramBuilder, Word};
    let cut_step = (n / 24 + 7) as Word;
    let cut_base = (n / 3 + 11) as Word;
    let mut b = ProgramBuilder::new();
    b.setthick(n as Word);
    b.mfs(r(1), SpecialReg::Tid); // r1 = lane id (affine, stays affine)
    b.ldi(r(3), 0); // r3 = accumulator (grows one run per iteration)
    b.ldi(r(4), 0); // r4 = loop counter (uniform)
    b.label("loop");
    b.alu(AluOp::Mul, r(7), r(4), cut_step);
    b.alu(AluOp::Add, r(7), r(7), cut_base); // r7 = this iteration's cut
    b.alu(AluOp::Slt, r(2), r(1), r(7)); // r2 = lane mask (2 runs)
    b.sel(r(6), r(2), r(1), r(3)); // masked select: id below the cut
    b.alu(AluOp::Add, r(3), r(3), r(6)); // piecewise fold of the rejoin
    b.multiop(MultiKind::Add, Reg::ZERO, 64, r(3)); // sum @ 64, closed form
    b.alu(AluOp::Add, r(4), r(4), 1);
    b.alu(AluOp::Slt, r(8), r(4), 16);
    b.bnez(r(8), "loop");
    b.halt();
    b.build().expect("workload assembles")
}

impl Workload {
    /// Every workload, in report order.
    pub const ALL: [Workload; 7] = [
        Workload::ThickPram,
        Workload::ThinNuma,
        Workload::MixedMultitasking,
        Workload::BroadcastStride,
        Workload::LaneIdReduction,
        Workload::BranchyDivergence,
        Workload::DivergentCompressed,
    ];

    /// Stable identifier used in bench output and `BENCH_hotpath.json`.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ThickPram => "thick_pram_flow",
            Workload::ThinNuma => "thin_numa_flow",
            Workload::MixedMultitasking => "mixed_multitasking",
            Workload::BroadcastStride => "broadcast_stride_sweep",
            Workload::LaneIdReduction => "lane_id_reduction",
            Workload::BranchyDivergence => "branchy_divergence",
            Workload::DivergentCompressed => "divergent_compressed",
        }
    }

    /// Compiles the workload's program (do this once, outside timing).
    pub fn program(self) -> Program {
        match self {
            Workload::ThickPram => tcf_lang::compile(&format!(
                "shared int a[1024] @ {};
                 void main() {{
                     #1024;
                     int i = 0;
                     while (i < 24) {{
                         a[.] = a[.] + .;
                         i = i + 1;
                     }}
                 }}",
                workloads::A_BASE
            ))
            .expect("workload compiles"),
            Workload::ThinNuma => workloads::tcf_numa_seq(400, 8),
            Workload::MixedMultitasking => workloads::task_program(150),
            Workload::BroadcastStride => tcf_lang::compile(&format!(
                "shared int a[2048] @ {};
                 shared int b[1024] @ {};
                 void main() {{
                     #1024;
                     int i = 0;
                     while (i < 16) {{
                         a[2 * .] = a[2 * .] + i;
                         b[.] = a[2 * .];
                         i = i + 1;
                     }}
                 }}",
                workloads::A_BASE,
                workloads::B_BASE
            ))
            .expect("workload compiles"),
            Workload::LaneIdReduction => tcf_lang::compile(&format!(
                "shared int sum @ 64;
                 shared int out[1024] @ {};
                 void main() {{
                     #1024;
                     int i = 0;
                     while (i < 8) {{
                         out[.] = prefix(sum, MPADD, .);
                         i = i + 1;
                     }}
                 }}",
                workloads::C_BASE
            ))
            .expect("workload compiles"),
            // tce has no per-lane ternary, so this one is built directly:
            // a parity-driven select/accumulate recurrence. The opening
            // `and` of the affine lane ids falls outside the affine
            // closure algebra, decaying every derived register to explicit
            // lanes — from then on the loop body (two `sel`s and three
            // lane-wise ALU ops per iteration) runs entirely on the
            // per-lane fallback path.
            Workload::BranchyDivergence => {
                use tcf_isa::reg::{r, SpecialReg};
                use tcf_isa::{AluOp, ProgramBuilder};
                let mut b = ProgramBuilder::new();
                b.setthick(1024);
                b.mfs(r(1), SpecialReg::Tid); // r1 = lane id
                b.alu(AluOp::And, r(2), r(1), 1); // r2 = parity (decays)
                b.ldi(r(3), 0); // r3 = accumulator
                b.ldi(r(4), 0); // r4 = loop counter (uniform)
                b.label("loop");
                b.sel(r(6), r(2), r(1), r(3)); // odd parity: take id, else acc
                b.alu(AluOp::Add, r(3), r(3), r(6));
                b.alu(AluOp::Xor, r(2), r(2), 1); // flip parity
                b.alu(AluOp::Sub, r(5), r(3), r(1));
                b.sel(r(3), r(2), r(5), r(3)); // new-odd lanes: acc -= id
                b.alu(AluOp::Add, r(4), r(4), 1);
                b.alu(AluOp::Slt, r(7), r(4), 16);
                b.bnez(r(7), "loop");
                b.st(r(3), r(1), workloads::C_BASE as tcf_isa::Word);
                b.halt();
                b.build().expect("workload assembles")
            }
            Workload::DivergentCompressed => divergent_program(DIVERGENT_THICKNESS),
        }
    }

    /// Builds a machine ready to run (tasks spawned, inputs in place).
    pub fn build(self, program: &Program) -> TcfMachine {
        let config = crate::small_config();
        let mut m = TcfMachine::new(config, Variant::SingleInstruction, program.clone());
        if self == Workload::MixedMultitasking {
            let entry = program.label("task").expect("task label");
            for i in 0..12 {
                // Thicknesses cycle 1, 4, 16: thin, medium, thick tasks
                // competing for the same groups.
                let thickness = [1usize, 4, 16][i % 3];
                m.spawn_task(entry, thickness).expect("spawn task");
            }
        }
        m
    }

    /// Runs a freshly [`build`](Workload::build)-t machine to completion.
    pub fn run(self, m: &mut TcfMachine) -> RunSummary {
        m.run(10_000_000).expect("workload halts")
    }
}

/// Throughput measurement for one workload.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Simulated machine steps per run.
    pub steps: u64,
    /// Issued units (compute + memory + fetch) per run.
    pub instrs: u64,
    /// Best wall-clock seconds over the repeats (machine build excluded).
    pub elapsed_sec: f64,
}

impl Measurement {
    /// Simulated steps per host second.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.elapsed_sec
    }

    /// Issued units per host second.
    pub fn instrs_per_sec(&self) -> f64 {
        self.instrs as f64 / self.elapsed_sec
    }
}

/// Minimum wall-clock time one timed sample must cover. The fastest
/// workload completes in ~100µs, where scheduler jitter alone swings a
/// single run by 2×; batching runs until a sample spans at least this
/// long keeps the reported rates stable enough for the CI regression
/// diff against `BENCH_hotpath.json`.
const MIN_SAMPLE_SECS: f64 = 0.05;

/// Measures one workload: one warmup run calibrates how many program
/// executions one sample needs to span [`MIN_SAMPLE_SECS`], then
/// `repeats` batched samples run and the fastest average per-run time is
/// kept (criterion-style minimum over batch means — the least-perturbed
/// sample of a deterministic simulation). Steps and instruction counts
/// are per run, not per batch.
pub fn measure(w: Workload, repeats: usize) -> Measurement {
    let program = w.program();
    measure_with(&|| w.build(&program), repeats)
}

/// Measures an arbitrary single-flow program on the small machine with
/// the same harness as [`measure`] — used for the
/// `divergent_compressed_100x` thickness-scaling probe, which re-runs
/// [`divergent_program`] at 100× [`DIVERGENT_THICKNESS`].
pub fn measure_program(program: &Program, repeats: usize) -> Measurement {
    measure_with(
        &|| {
            TcfMachine::new(
                crate::small_config(),
                Variant::SingleInstruction,
                program.clone(),
            )
        },
        repeats,
    )
}

fn measure_with(build: &dyn Fn() -> TcfMachine, repeats: usize) -> Measurement {
    let (summary, iters) = {
        let mut m = build();
        let start = Instant::now();
        let summary = m.run(10_000_000).expect("workload halts");
        let once = start.elapsed().as_secs_f64().max(1e-9);
        (summary, (MIN_SAMPLE_SECS / once).ceil().max(1.0) as usize)
    };
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        // One sample averages `iters` back-to-back runs; machine builds
        // stay outside the per-run timers.
        let mut total = 0.0;
        for _ in 0..iters {
            let mut m = build();
            let start = Instant::now();
            m.run(10_000_000).expect("workload halts");
            total += start.elapsed().as_secs_f64();
        }
        best = best.min(total / iters as f64);
    }
    Measurement {
        steps: summary.steps,
        instrs: summary.machine.issued(),
        elapsed_sec: best.max(f64::MIN_POSITIVE),
    }
}

/// Observability configuration for the `obs_overhead_*` probes, which
/// re-run [`Workload::ThickPram`] under each mode to price the telemetry
/// pipeline (docs/OBSERVABILITY.md "Measured overhead"). CI gates the
/// `Off` mode at ≤5% below the plain `thick_pram_flow` rate: recording
/// hooks that are compiled in but disabled must stay (nearly) free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Sinks disabled (the default): hooks early-return.
    Off,
    /// Cycle trace and flow-event recording on, batch export afterwards.
    Record,
    /// Recording on plus a live streaming subscriber: a cursor drain
    /// appends `tcf-obs-stream/v2` NDJSON every `DRAIN_INTERVAL_STEPS`
    /// machine steps (plus a final catch-up), as `repro --stream` does.
    Stream,
}

impl ObsMode {
    /// Every mode, in report order.
    pub const ALL: [ObsMode; 3] = [ObsMode::Off, ObsMode::Record, ObsMode::Stream];

    /// Stable identifier used in `BENCH_hotpath.json`.
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Off => "obs_overhead_off",
            ObsMode::Record => "obs_overhead_record",
            ObsMode::Stream => "obs_overhead_stream",
        }
    }

    fn build(self, program: &Program) -> TcfMachine {
        let mut m = Workload::ThickPram.build(program);
        if self != ObsMode::Off {
            m.set_tracing(true);
            m.set_observing(true);
        }
        m
    }

    /// Runs the machine to completion under this mode; the streamed NDJSON
    /// document is produced (and discarded) inside the timed region, like
    /// a real subscriber would consume it.
    fn run(self, m: &mut TcfMachine) -> (u64, u64) {
        match self {
            ObsMode::Stream => {
                let mut cursor = StreamCursor::default();
                let mut doc = header_line();
                let mut steps = 0u64;
                loop {
                    let more = m.step().expect("workload halts");
                    steps += 1;
                    if steps.is_multiple_of(DRAIN_INTERVAL_STEPS) {
                        drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
                    }
                    if !more {
                        break;
                    }
                }
                drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
                std::hint::black_box(doc.len());
            }
            ObsMode::Off | ObsMode::Record => {
                m.run(10_000_000).expect("workload halts");
            }
        }
        (m.steps_executed(), m.stats().issued())
    }
}

/// Measures the observability-overhead probe for one mode, with the same
/// calibrated-batch harness as [`measure`].
pub fn measure_obs(mode: ObsMode, repeats: usize) -> Measurement {
    let program = Workload::ThickPram.program();
    let (steps, instrs, iters) = {
        let mut m = mode.build(&program);
        let start = Instant::now();
        let (steps, instrs) = mode.run(&mut m);
        let once = start.elapsed().as_secs_f64().max(1e-9);
        (
            steps,
            instrs,
            (MIN_SAMPLE_SECS / once).ceil().max(1.0) as usize,
        )
    };
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let mut total = 0.0;
        for _ in 0..iters {
            let mut m = mode.build(&program);
            let start = Instant::now();
            mode.run(&mut m);
            total += start.elapsed().as_secs_f64();
        }
        best = best.min(total / iters as f64);
    }
    Measurement {
        steps,
        instrs,
        elapsed_sec: best.max(f64::MIN_POSITIVE),
    }
}

/// Renders the `BENCH_hotpath.json` document (`tcf-bench-hotpath/v1`):
/// steps/sec and instrs/sec for every workload in [`Workload::ALL`],
/// plus the [`ObsMode`] overhead probes.
pub fn bench_json(repeats: usize) -> String {
    let mut entries: Vec<(&'static str, Measurement)> = Vec::new();
    for w in Workload::ALL {
        entries.push((w.name(), measure(w, repeats)));
    }
    // Thickness-scaling probe: the divergent-compressed recurrence again
    // at 100× the thickness. Per-step cost is O(#mask runs), so the step
    // rate must stay flat — `tools/bench_gate.py` asserts it lands within
    // 2× of the baseline `divergent_compressed` rate.
    let program_100x = divergent_program(100 * DIVERGENT_THICKNESS);
    entries.push((
        "divergent_compressed_100x",
        measure_program(&program_100x, repeats),
    ));
    for mode in ObsMode::ALL {
        entries.push((mode.name(), measure_obs(mode, repeats)));
    }
    let mut out = String::from("{\n  \"schema\": \"tcf-bench-hotpath/v1\",\n  \"workloads\": {\n");
    for (i, (name, m)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"steps\": {},\n      \"instrs\": {},\n      \
             \"elapsed_sec\": {:.6},\n      \"steps_per_sec\": {:.1},\n      \
             \"instrs_per_sec\": {:.1}\n    }}{}\n",
            name,
            m.steps,
            m.instrs,
            m.elapsed_sec,
            m.steps_per_sec(),
            m.instrs_per_sec(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_halt_and_count() {
        for w in Workload::ALL {
            let program = w.program();
            let mut m = w.build(&program);
            let s = w.run(&mut m);
            assert!(s.halted, "{} did not halt", w.name());
            assert!(s.steps > 0, "{} executed no steps", w.name());
            assert!(s.machine.issued() > 0, "{} issued nothing", w.name());
        }
    }

    #[test]
    fn thick_workload_computes_the_loop() {
        let w = Workload::ThickPram;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // a[j] starts 0 and gains j per iteration, 24 iterations.
        for j in [0usize, 1, 513, 1023] {
            assert_eq!(m.peek(workloads::A_BASE + j).unwrap(), 24 * j as i64);
        }
    }

    #[test]
    fn broadcast_stride_workload_computes_the_sweep() {
        let w = Workload::BroadcastStride;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // a[2j] gains i per iteration i: sum 0..15 = 120; b[j] mirrors it.
        for j in [0usize, 1, 511, 1023] {
            assert_eq!(m.peek(workloads::A_BASE + 2 * j).unwrap(), 120);
            assert_eq!(m.peek(workloads::B_BASE + j).unwrap(), 120);
            // Odd elements of `a` are never touched by the stride-2 sweep.
            assert_eq!(m.peek(workloads::A_BASE + 2 * j + 1).unwrap(), 0);
        }
    }

    #[test]
    fn lane_id_reduction_computes_prefixes() {
        let w = Workload::LaneIdReduction;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // One round adds sum(0..1023) = 523776; lane j's final (8th-round)
        // prefix is 7 rounds' total plus the ids below it.
        let round: i64 = 1023 * 1024 / 2;
        for j in [0usize, 1, 513, 1023] {
            let below = (j as i64) * (j as i64 - 1) / 2;
            assert_eq!(
                m.peek(workloads::C_BASE + j).unwrap(),
                7 * round + below,
                "out[{j}] wrong"
            );
        }
        assert_eq!(m.peek(64).unwrap(), 8 * round);
    }

    #[test]
    fn branchy_divergence_computes_the_recurrence() {
        let w = Workload::BranchyDivergence;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // Mirror of the parity recurrence the program runs per lane.
        for j in [0usize, 1, 2, 513, 1022, 1023] {
            let id = j as i64;
            let (mut par, mut acc) = (id & 1, 0i64);
            for _ in 0..16 {
                acc += if par != 0 { id } else { acc };
                par ^= 1;
                if par != 0 {
                    acc -= id;
                }
            }
            assert_eq!(m.peek(workloads::C_BASE + j).unwrap(), acc, "lane {j}");
        }
    }

    /// Per-lane mirror of the divergent-compressed recurrence: lane `j`
    /// below iteration `i`'s cut takes its id, every lane folds into the
    /// accumulator, and every iteration contributes all accumulators to
    /// the shared sum (wrapping word arithmetic throughout).
    fn divergent_mirror(n: usize) -> i64 {
        let cut_step = (n / 24 + 7) as i64;
        let cut_base = (n / 3 + 11) as i64;
        let mut sum = 0i64;
        for j in 0..n {
            let id = j as i64;
            let mut acc = 0i64;
            for i in 0..16 {
                let cut = (i as i64).wrapping_mul(cut_step).wrapping_add(cut_base);
                let pick = if id < cut { id } else { acc };
                acc = acc.wrapping_add(pick);
                sum = sum.wrapping_add(acc);
            }
        }
        sum
    }

    #[test]
    fn divergent_compressed_computes_the_recurrence() {
        // Small instance first (cheap to mirror), then the full workload.
        for n in [4096usize, DIVERGENT_THICKNESS] {
            let program = divergent_program(n);
            let mut m = TcfMachine::new(crate::small_config(), Variant::SingleInstruction, program);
            m.run(10_000_000).expect("workload halts");
            assert_eq!(m.peek(64).unwrap(), divergent_mirror(n), "thickness {n}");
        }
    }

    #[test]
    fn divergent_compressed_stays_compressed() {
        let w = Workload::DivergentCompressed;
        let program = w.program();
        let mut m = w.build(&program);
        w.run(&mut m);
        // The whole run must stay on the masked/piecewise closed-form
        // path: divergence is absorbed by lane masks (mask hits, zero
        // decays of any kind), never by materializing 10^6 lanes.
        let decay = m.thick_decay();
        assert_eq!(decay.total(), 0, "workload decayed: {decay:?}");
        assert!(
            m.engine_counters().mask_hits > 0,
            "workload never took the masked path: {:?}",
            m.engine_counters()
        );
        assert_eq!(
            m.engine_counters().mask_misses,
            0,
            "workload fell off the masked path: {:?}",
            m.engine_counters()
        );
    }

    /// The O(#runs) claim, measured: stepping the recurrence at 64× the
    /// thickness must not cost anywhere near 64× the time. A loose 8×
    /// envelope keeps the assertion robust on noisy CI hosts — the real
    /// ratio is near 1, and a per-lane regression would show up as ~64×.
    #[test]
    fn divergent_compressed_step_cost_is_flat_in_thickness() {
        let time_run = |n: usize| {
            let program = divergent_program(n);
            let mut m = TcfMachine::new(crate::small_config(), Variant::SingleInstruction, program);
            let start = std::time::Instant::now();
            m.run(10_000_000).expect("workload halts");
            start.elapsed().as_secs_f64()
        };
        time_run(1 << 14); // warmup
        let base = time_run(1 << 14).max(1e-6);
        let scaled = time_run(1 << 20);
        assert!(
            scaled < 8.0 * base,
            "64x thickness cost {scaled:.6}s vs {base:.6}s at baseline — not flat"
        );
    }

    #[test]
    fn bench_json_contains_all_workloads() {
        let json = bench_json(1);
        for w in Workload::ALL {
            assert!(json.contains(w.name()), "missing {}", w.name());
        }
        assert!(json.contains("divergent_compressed_100x"));
        for mode in ObsMode::ALL {
            assert!(json.contains(mode.name()), "missing {}", mode.name());
        }
        assert!(json.contains("steps_per_sec"));
        assert!(json.contains("instrs_per_sec"));
    }

    #[test]
    fn obs_modes_execute_the_same_simulation() {
        let program = Workload::ThickPram.program();
        let mut counts = Vec::new();
        for mode in ObsMode::ALL {
            let mut m = mode.build(&program);
            let (steps, instrs) = mode.run(&mut m);
            assert!(steps > 0 && instrs > 0, "{} ran nothing", mode.name());
            counts.push((steps, instrs));
            // The simulation result is identical no matter what the
            // telemetry pipeline observes.
            assert_eq!(m.peek(workloads::A_BASE + 513).unwrap(), 24 * 513);
            // Recording modes actually captured events; Off stayed empty.
            let recorded = !m.obs().events().is_empty();
            assert_eq!(recorded, mode != ObsMode::Off, "{}", mode.name());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
