//! A scriptable debugger for TCF machines.
//!
//! Drives a [`TcfMachine`] step by step with a small command language,
//! inspecting flows, registers and memory. The `tdbg` binary wraps this
//! in a stdin REPL; scripts make it testable and usable from CI.
//!
//! ```text
//! step [n]          advance n machine steps (default 1)
//! run [n]           run to completion (or at most n steps)
//! break <pc>        toggle a breakpoint at instruction index pc
//! flows             list flows (id, status, mode, thickness, pc)
//! regs <flow>       dump a flow's registers (uniform or first lanes)
//! mem <addr> <len>  dump shared memory words
//! thick             machine-wide running thickness
//! stats             step/cycle/fetch counters so far
//! util              per-group issue-slot utilization so far
//! hist              latency histograms (memory round-trip, net queue, …)
//! events [n]        last n recorded flow-lifecycle events (default 10)
//! list              disassembly with the current flow pcs marked
//! help              this text
//! quit              stop the session
//! ```
//!
//! The debugger always records the cycle-level trace and the flow-event
//! stream (`util`, `hist` and `events` read them live).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use tcf_core::{FlowStatus, TcfMachine};

/// Interactive debugger state wrapping a machine.
pub struct Debugger {
    machine: TcfMachine,
    breakpoints: BTreeSet<usize>,
    finished: bool,
}

/// Outcome of one command, for REPL loops.
pub enum CmdOutcome {
    /// Keep reading commands.
    Continue,
    /// `quit` was issued.
    Quit,
}

impl Debugger {
    /// Wraps a machine for debugging, turning on trace and flow-event
    /// recording so `util`, `hist` and `events` have data to show.
    pub fn new(mut machine: TcfMachine) -> Debugger {
        machine.set_tracing(true);
        machine.set_observing(true);
        Debugger {
            machine,
            breakpoints: BTreeSet::new(),
            finished: false,
        }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &TcfMachine {
        &self.machine
    }

    /// Executes one command line, appending human-readable output.
    pub fn exec(&mut self, line: &str, out: &mut String) -> CmdOutcome {
        let mut parts = line.split_whitespace();
        let cmd = match parts.next() {
            Some(c) => c,
            None => return CmdOutcome::Continue,
        };
        let arg1: Option<i64> = parts.next().and_then(|s| s.parse().ok());
        let arg2: Option<i64> = parts.next().and_then(|s| s.parse().ok());
        match cmd {
            "step" | "s" => {
                let n = arg1.unwrap_or(1).max(0) as u64;
                self.advance(n, true, out);
            }
            "run" | "r" => {
                let n = arg1.unwrap_or(1_000_000).max(0) as u64;
                self.advance(n, true, out);
            }
            "break" | "b" => match arg1 {
                Some(pc) if pc >= 0 => {
                    let pc = pc as usize;
                    if self.breakpoints.remove(&pc) {
                        let _ = writeln!(out, "breakpoint at {pc} removed");
                    } else {
                        self.breakpoints.insert(pc);
                        let _ = writeln!(out, "breakpoint at {pc} set");
                    }
                }
                _ => {
                    let _ = writeln!(out, "usage: break <pc>");
                }
            },
            "flows" | "f" => self.show_flows(out),
            "regs" => match arg1 {
                Some(id) if id >= 0 => self.show_regs(id as u32, out),
                _ => {
                    let _ = writeln!(out, "usage: regs <flow-id>");
                }
            },
            "mem" | "m" => match (arg1, arg2) {
                (Some(a), Some(l)) if a >= 0 && l > 0 => {
                    match self.machine.peek_range(a as usize, l as usize) {
                        Ok(words) => {
                            let _ = writeln!(out, "mem[{a}..{}] = {words:?}", a + l);
                        }
                        Err(e) => {
                            let _ = writeln!(out, "error: {e}");
                        }
                    }
                }
                _ => {
                    let _ = writeln!(out, "usage: mem <addr> <len>");
                }
            },
            "thick" => {
                let _ = writeln!(
                    out,
                    "running thickness {}",
                    self.machine.running_thickness()
                );
            }
            "stats" => {
                let s = self.machine.stats();
                let _ = writeln!(
                    out,
                    "steps {}, cycles {}, fetches {}, issued {}, utilization {:.2}",
                    self.machine.steps_executed(),
                    self.machine.cycles(),
                    s.fetches,
                    s.issued(),
                    s.utilization()
                );
            }
            "util" | "u" => self.show_util(out),
            "top" | "t" => self.show_top(out),
            "hist" => self.show_hists(out),
            "events" | "e" => {
                let n = arg1.unwrap_or(10).max(0) as usize;
                self.show_events(n, out);
            }
            "list" | "l" => self.show_listing(out),
            "help" | "h" | "?" => {
                let _ = writeln!(
                    out,
                    "commands: step [n] | run [n] | break <pc> | flows | regs <flow> | \
                     mem <addr> <len> | thick | stats | util | top | hist | events [n] | \
                     list | help | quit"
                );
            }
            "quit" | "q" => return CmdOutcome::Quit,
            other => {
                let _ = writeln!(out, "unknown command `{other}` (try help)");
            }
        }
        CmdOutcome::Continue
    }

    /// Runs a whole script, returning the collected output.
    pub fn run_script(&mut self, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let _ = writeln!(out, "(tdbg) {line}");
            if matches!(self.exec(line, &mut out), CmdOutcome::Quit) {
                break;
            }
        }
        out
    }

    fn advance(&mut self, max_steps: u64, honor_breakpoints: bool, out: &mut String) {
        if self.finished {
            let _ = writeln!(out, "machine already finished");
            return;
        }
        for _ in 0..max_steps {
            match self.machine.step() {
                Ok(true) => {}
                Ok(false) => {
                    self.finished = true;
                    let _ = writeln!(
                        out,
                        "finished after {} steps, {} cycles",
                        self.machine.steps_executed(),
                        self.machine.cycles()
                    );
                    return;
                }
                Err(e) => {
                    self.finished = true;
                    let _ = writeln!(out, "fault: {e}");
                    return;
                }
            }
            if honor_breakpoints && self.at_breakpoint() {
                let _ = writeln!(
                    out,
                    "breakpoint hit at step {}",
                    self.machine.steps_executed()
                );
                self.show_flows(out);
                return;
            }
        }
        let _ = writeln!(
            out,
            "stopped at step {}, cycle {}",
            self.machine.steps_executed(),
            self.machine.cycles()
        );
    }

    fn at_breakpoint(&self) -> bool {
        self.machine.flow_ids().iter().any(|&id| {
            self.machine
                .flow(id)
                .map(|f| f.is_running() && self.breakpoints.contains(&f.pc))
                .unwrap_or(false)
        })
    }

    fn show_flows(&self, out: &mut String) {
        for id in self.machine.flow_ids() {
            let f = self.machine.flow(id).expect("listed flow exists");
            let status = match f.status {
                FlowStatus::Running => "running".to_string(),
                FlowStatus::WaitingJoin { pending } => format!("waiting-join({pending})"),
                FlowStatus::WaitingSpawn { pending } => format!("waiting-spawn({pending})"),
                FlowStatus::Absorbed { leader } => format!("absorbed(by {leader})"),
                FlowStatus::Halted => "halted".to_string(),
            };
            let mode = match f.mode {
                tcf_core::flow::ExecMode::Pram => format!("pram x{}", f.thickness),
                tcf_core::flow::ExecMode::Numa { slots } => format!("numa 1/{slots}"),
            };
            let _ = writeln!(out, "flow {id:>3}  {status:<18} {mode:<12} pc {}", f.pc);
        }
    }

    fn show_regs(&self, id: u32, out: &mut String) {
        match self.machine.flow(id) {
            None => {
                let _ = writeln!(out, "no flow {id}");
            }
            Some(f) => {
                let mut lanes = Vec::new();
                for i in 0..f.regs.len() {
                    let reg = tcf_isa::reg::Reg::new(i as u8);
                    let v = f.regs.value(reg);
                    match v.as_uniform() {
                        Some(u) => {
                            if u != 0 {
                                let _ = writeln!(out, "  r{i:<2} = {u}");
                            }
                        }
                        None => {
                            v.materialize_into(f.thickness.min(8), &mut lanes);
                            let _ = writeln!(
                                out,
                                "  r{i:<2} = per-thread {lanes:?}{}",
                                if f.thickness > 8 { " ..." } else { "" }
                            );
                        }
                    }
                }
            }
        }
    }

    fn show_util(&self, out: &mut String) {
        let trace = self.machine.trace();
        for g in 0..self.machine.config().groups {
            let _ = writeln!(
                out,
                "group {g}: utilization {:.2} (busy {}, overhead {})",
                trace.utilization(g),
                trace.busy_cycles(g),
                trace.overhead_cycles(g),
            );
        }
        let _ = writeln!(
            out,
            "machine: utilization {:.2}",
            self.machine.stats().utilization()
        );
    }

    /// `top`-style live counters view: per-worker lane shares with ASCII
    /// utilization bars, compression/decay taxonomy, coalescing and
    /// bulk-resolution hit rates, and the streaming sink's drop counts —
    /// everything the live telemetry pipeline exports, at a glance.
    fn show_top(&self, out: &mut String) {
        let ec = self.machine.engine_counters();
        let _ = writeln!(
            out,
            "engine: {} thick instrs, {} slices ({} compressed, {} per-lane)",
            ec.thick_instrs, ec.slices, ec.compressed_slices, ec.per_lane_slices
        );
        let total = ec.total_lanes();
        for (w, ppm) in ec.worker_utilization_ppm().iter().enumerate() {
            let pct = *ppm as f64 / 10_000.0;
            let bar_len = (pct / 5.0).round() as usize;
            let _ = writeln!(
                out,
                "worker {w}: [{:<20}] {pct:>5.1}%  {} lanes, {} slices",
                "#".repeat(bar_len.min(20)),
                ec.worker_lanes[w],
                ec.worker_slices[w],
            );
        }
        if total == 0 {
            let _ = writeln!(out, "workers: no thick lanes executed yet");
        }
        let td = self.machine.thick_decay();
        let _ = writeln!(
            out,
            "decay: {} total (setthick {}, lane_write {}, mem_reply {}, mask_runs {}, \
             fault {}, balanced_resume {}, async_slice {})",
            td.total(),
            td.setthick,
            td.lane_write,
            td.mem_reply,
            td.mask_runs,
            td.fault,
            td.balanced_resume,
            td.async_slice
        );
        let _ = writeln!(
            out,
            "mask: {} hits, {} misses",
            ec.mask_hits, ec.mask_misses
        );
        let _ = writeln!(
            out,
            "coalesce: {} hits, {} misses; absorbed {} events",
            ec.coalesce_hits, ec.coalesce_misses, ec.absorbed_events
        );
        let bs = self.machine.bulk_stats();
        let _ = writeln!(
            out,
            "bulk: {} fast, {} expanded ({} lanes)",
            bs.fast, bs.expanded, bs.expanded_lanes
        );
        let _ = writeln!(
            out,
            "obs: {} trace events ({} dropped), {} flow events ({} dropped)",
            self.machine.trace().events().len(),
            self.machine.trace().dropped(),
            self.machine.obs().events().len(),
            self.machine.obs().dropped(),
        );
    }

    fn show_hists(&self, out: &mut String) {
        let reg = self.machine.metrics();
        for name in ["machine.mem_roundtrip", "buffer.reload", "net.queue"] {
            if let Some(h) = reg.histogram(name) {
                let _ = writeln!(out, "{name}:");
                out.push_str(&h.render_ascii());
                out.push('\n');
            }
        }
    }

    fn show_events(&self, n: usize, out: &mut String) {
        let events = self.machine.obs().events();
        if events.is_empty() {
            let _ = writeln!(out, "no flow events recorded yet");
            return;
        }
        let start = events.len().saturating_sub(n);
        for ev in &events[start..] {
            let flow = match ev.event.flow() {
                Some(f) => format!("flow {f}"),
                None => "machine".to_string(),
            };
            let _ = writeln!(
                out,
                "step {:>4} cycle {:>6}  {:<16} {}",
                ev.step,
                ev.cycle,
                ev.event.name(),
                flow
            );
        }
    }

    fn show_listing(&self, out: &mut String) {
        let pcs: BTreeSet<usize> = self
            .machine
            .flow_ids()
            .iter()
            .filter_map(|&id| self.machine.flow(id))
            .filter(|f| f.is_running())
            .map(|f| f.pc)
            .collect();
        for (i, instr) in self.machine.program().instrs.iter().enumerate() {
            let marker = if pcs.contains(&i) { "=>" } else { "  " };
            let bp = if self.breakpoints.contains(&i) {
                "*"
            } else {
                " "
            };
            let _ = writeln!(out, "{marker}{bp}{i:>4}  {instr}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_core::Variant;
    use tcf_isa::asm::assemble;
    use tcf_machine::MachineConfig;

    fn dbg(src: &str) -> Debugger {
        let m = TcfMachine::new(
            MachineConfig::small(),
            Variant::SingleInstruction,
            assemble(src).unwrap(),
        );
        Debugger::new(m)
    }

    const PROG: &str = "main:
            setthick 8
            mfs r1, tid
            add r2, r1, 1
            ldi r3, 100
            add r3, r3, r1
            st r2, [r3+0]
            halt
        ";

    #[test]
    fn script_steps_and_inspects() {
        let mut d = dbg(PROG);
        let out = d.run_script(
            "flows
             step 3
             flows
             regs 0
             run
             mem 100 8
             stats
             quit",
        );
        assert!(out.contains("flow   0"), "{out}");
        assert!(out.contains("pram x1"), "{out}"); // before setthick
        assert!(out.contains("pram x8"), "{out}"); // after step 3
        assert!(out.contains("per-thread"), "{out}");
        assert!(
            out.contains("mem[100..108] = [1, 2, 3, 4, 5, 6, 7, 8]"),
            "{out}"
        );
        assert!(out.contains("finished"), "{out}");
    }

    #[test]
    fn breakpoints_pause_execution() {
        let mut d = dbg(PROG);
        let out = d.run_script("break 5\nrun\n");
        assert!(out.contains("breakpoint at 5 set"), "{out}");
        assert!(out.contains("breakpoint hit"), "{out}");
        // The store at pc 5 has not executed yet.
        let mut out2 = String::new();
        d.exec("mem 100 1", &mut out2);
        assert!(out2.contains("[0]"), "{out2}");
        let out3 = d.run_script("run\nmem 100 1\n");
        assert!(out3.contains("[1]"), "{out3}");
    }

    #[test]
    fn listing_marks_pcs() {
        let mut d = dbg(PROG);
        let out = d.run_script("step 2\nlist\n");
        assert!(out.lines().any(|l| l.starts_with("=>")), "{out}");
    }

    #[test]
    fn faults_are_reported_not_panicked() {
        let mut d = dbg("main:\n setthick 4\n mfs r1, tid\n bnez r1, main\n halt\n");
        let out = d.run_script("run\n");
        assert!(out.contains("fault"), "{out}");
        assert!(out.contains("diverged"), "{out}");
    }

    #[test]
    fn util_hist_and_events_show_live_observability() {
        let mut d = dbg(PROG);
        let out = d.run_script("run\nutil\nhist\nevents 100\n");
        assert!(out.contains("group 0: utilization"), "{out}");
        assert!(out.contains("machine: utilization"), "{out}");
        assert!(out.contains("machine.mem_roundtrip:"), "{out}");
        assert!(out.contains("count"), "{out}");
        assert!(out.contains("thickness_change"), "{out}");
        assert!(out.contains("step_end"), "{out}");
    }

    #[test]
    fn top_shows_live_engine_counters() {
        let mut d = dbg(PROG);
        let out = d.run_script("run\ntop\n");
        assert!(out.contains("engine:"), "{out}");
        assert!(out.contains("thick instrs"), "{out}");
        assert!(out.contains("worker 0: ["), "{out}");
        assert!(out.contains("decay:"), "{out}");
        assert!(out.contains("mask_runs"), "{out}");
        assert!(out.contains("balanced_resume"), "{out}");
        assert!(out.contains("async_slice"), "{out}");
        assert!(out.contains("mask:"), "{out}");
        assert!(out.contains("coalesce:"), "{out}");
        assert!(out.contains("bulk:"), "{out}");
        assert!(out.contains("dropped"), "{out}");
    }

    #[test]
    fn unknown_commands_are_tolerated() {
        let mut d = dbg(PROG);
        let out = d.run_script("frobnicate\nhelp\nquit\nstep");
        assert!(out.contains("unknown command"));
        assert!(out.contains("commands:"));
        // quit stops the script: the trailing step never ran.
        assert!(!out.contains("stopped at step"));
    }
}
