//! Workload generators: the tce sources and assembly programs used by the
//! experiments, parameterized by problem size.

use tcf_core::{Allocation, TcfMachine, Variant};
use tcf_isa::asm::assemble;
use tcf_isa::program::Program;
use tcf_isa::word::Word;
use tcf_lang::{compile, compile_with, CompileOptions};
use tcf_machine::MachineConfig;
use tcf_pram::PramMachine;

/// Memory map shared by the array workloads.
pub const A_BASE: usize = 1 << 14;
/// Second input vector base.
pub const B_BASE: usize = 2 << 14;
/// Output vector base.
pub const C_BASE: usize = 3 << 14;

/// The TCF version of the §4 array add: `#size; c. = a. + b.;`.
pub fn tcf_vector_add(size: usize) -> Program {
    compile(&format!(
        "shared int a[{size}] @ {A_BASE};
         shared int b[{size}] @ {B_BASE};
         shared int c[{size}] @ {C_BASE};
         void main() {{
             #{size};
             c[.] = a[.] + b[.];
         }}"
    ))
    .expect("workload compiles")
}

/// The thread-model version with the loop (`size` may exceed the thread
/// count) — §4's `for (i = thread_id; i < size; i += number_of_threads)`.
pub fn loop_vector_add(size: usize) -> Program {
    compile(&format!(
        "shared int a[{size}] @ {A_BASE};
         shared int b[{size}] @ {B_BASE};
         shared int c[{size}] @ {C_BASE};
         void main() {{
             int total = nprocs * nthreads;
             int i = gid;
             while (i < {size}) {{
                 c[i] = a[i] + b[i];
                 i = i + total;
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// The thread-model version with the guard (`size` below the thread
/// count) — §4's `if (thread_id < size) ...`.
pub fn guard_vector_add(size: usize) -> Program {
    compile(&format!(
        "shared int a[{size}] @ {A_BASE};
         shared int b[{size}] @ {B_BASE};
         shared int c[{size}] @ {C_BASE};
         void main() {{
             if (gid < {size}) {{
                 c[gid] = a[gid] + b[gid];
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// TCF multiprefix reduction: `prefix(sum, MPADD, value)` at thickness
/// `size`.
pub fn tcf_prefix(size: usize) -> Program {
    compile(&format!(
        "shared int sum @ 64;
         shared int out[{size}] @ {C_BASE};
         void main() {{
             #{size};
             out[.] = prefix(sum, MPADD, . + 1);
         }}"
    ))
    .expect("workload compiles")
}

/// Thread-model multiprefix with the §4 loop.
pub fn loop_prefix(size: usize) -> Program {
    compile(&format!(
        "shared int sum @ 64;
         shared int out[{size}] @ {C_BASE};
         void main() {{
             int total = nprocs * nthreads;
             int i = gid;
             while (i < {size}) {{
                 out[i] = prefix(sum, MPADD, i + 1);
                 i = i + total;
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// The §4 dependent loop (Hillis–Steele scan) in TCF form.
pub fn tcf_scan(size: usize) -> Program {
    compile(&format!(
        "shared int src[{size}] @ {A_BASE};
         void main() {{
             int i = 1;
             while (i < {size}) {{
                 #{size} - i: src[. + i] = src[. + i] + src[.];
                 i = i << 1;
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// The §4 dependent loop in thread form with the guard.
///
/// Only valid for `size <= P*T_p` (one element per thread, no outer
/// loop), matching the paper's presentation. Compiled with masked conditionals so every thread executes the same
/// instruction sequence: a per-thread *branch* would let unguarded
/// threads race ahead to the next `i` iteration before the guarded
/// threads' stores land, breaking the dependence the paper's lockstep
/// argument relies on.
pub fn loop_scan(size: usize) -> Program {
    compile_with(
        &format!(
            "shared int src[{size}] @ {A_BASE};
             void main() {{
                 int i = 1;
                 while (i < {size}) {{
                     int sel = (gid >= i) && (gid < {size});
                     if (sel) {{ src[gid] = src[gid] + src[gid - i]; }}
                     i = i << 1;
                 }}
             }}"
        ),
        CompileOptions {
            masked_conditionals: true,
            ..Default::default()
        },
    )
    .expect("workload compiles")
}

/// The §4 dependent loop as Multi-instruction `fork`s.
///
/// The paper notes the fork construct synchronizes only at join and that
/// asynchronous threads "do not work if there are dependencies between
/// the threads": the naive `src[t] += src[t-i]` races within one level.
/// The standard remedy — and the "remarkable overhead" the paper
/// predicts — is double buffering through a scratch array, doubling the
/// per-level work.
pub fn fork_scan(size: usize) -> Program {
    compile(&format!(
        "shared int src[{size}] @ {A_BASE};
         shared int tmp[{size}] @ {B_BASE};
         void main() {{
             int i = 1;
             while (i < {size}) {{
                 fork (t = 0; t < {size}) {{
                     int v = src[t];
                     if (t >= i) {{
                         v = v + src[t - i];
                     }}
                     tmp[t] = v;
                 }}
                 fork (t = 0; t < {size}) {{
                     src[t] = tmp[t];
                 }}
                 i = i << 1;
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// Two-way conditional: TCF `parallel` version (P5).
pub fn tcf_two_way(size: usize) -> Program {
    let half = size / 2;
    compile(&format!(
        "shared int a[{size}] @ {A_BASE};
         shared int b[{size}] @ {B_BASE};
         shared int c[{size}] @ {C_BASE};
         void main() {{
             parallel {{
                 #{half}: c[.] = a[.] + b[.];
                 #{half}: c[. + {half}] = 0;
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// Two-way conditional: Fixed-thickness masked version (sequential
/// passes, P5's SIMD case).
pub fn masked_two_way(size: usize) -> Program {
    let half = size / 2;
    compile_with(
        &format!(
            "shared int a[{size}] @ {A_BASE};
             shared int b[{size}] @ {B_BASE};
             shared int c[{size}] @ {C_BASE};
             void main() {{
                 int lo = . < {half};
                 if (lo) {{ c[.] = a[.] + b[.]; }} else {{ c[.] = 0; }}
             }}"
        ),
        CompileOptions {
            masked_conditionals: true,
            ..Default::default()
        },
    )
    .expect("workload compiles")
}

/// Low-parallelism sequential section: TCF NUMA form (`#1/T`).
pub fn tcf_numa_seq(iters: usize, bunch: usize) -> Program {
    compile(&format!(
        "shared int acc @ 70;
         void main() {{
             numa ({bunch}) {{
                 int i = 0;
                 while (i < {iters}) {{
                     i = i + 1;
                 }}
                 acc = i;
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// Low-parallelism sequential section: plain single-thread form.
pub fn plain_seq(iters: usize) -> Program {
    compile(&format!(
        "shared int acc @ 70;
         void main() {{
             if (gid == 0) {{
                 int i = 0;
                 while (i < {iters}) {{
                     i = i + 1;
                 }}
                 acc = i;
             }}
         }}"
    ))
    .expect("workload compiles")
}

/// A task body for multitasking experiments: `iters` loop iterations at
/// thickness 1, then halt. Root program only halts.
pub fn task_program(iters: usize) -> Program {
    assemble(&format!(
        "main:
            halt
        task:
            ldi r1, {iters}
        loop:
            sub r1, r1, 1
            bnez r1, loop
            halt
        "
    ))
    .expect("workload assembles")
}

/// The ESM software context-switch cost probe: every thread saves and
/// restores its `R`-register context to shared memory — what a
/// time-shared ESM must do per task switch (Table 1's `O(T_p)` row,
/// measured).
pub fn context_switch_program(regs: usize, save_base: usize) -> Program {
    let mut src = String::from("main:\n    mfs r1, gid\n");
    // Context area: R words per thread.
    src.push_str(&format!("    ldi r2, {regs}\n    mul r2, r2, r1\n"));
    src.push_str(&format!("    ldi r3, {save_base}\n    add r2, r2, r3\n"));
    for k in 0..regs {
        src.push_str(&format!("    st r4, [r2+{k}]\n"));
    }
    for k in 0..regs {
        src.push_str(&format!("    ld r4, [r2+{k}]\n"));
    }
    src.push_str("    halt\n");
    assemble(&src).expect("workload assembles")
}

/// Initializes the array workload inputs in a TCF machine.
pub fn init_arrays_tcf(m: &mut TcfMachine, size: usize) {
    for i in 0..size {
        m.poke(A_BASE + i, i as Word).unwrap();
        m.poke(B_BASE + i, 2 * i as Word).unwrap();
    }
}

/// Initializes the array workload inputs in a baseline machine.
pub fn init_arrays_pram(m: &mut PramMachine, size: usize) {
    for i in 0..size {
        m.poke(A_BASE + i, i as Word).unwrap();
        m.poke(B_BASE + i, 2 * i as Word).unwrap();
    }
}

/// Checks the vector-add output.
pub fn check_vector_add(peek: impl Fn(usize) -> Word, size: usize) {
    for i in 0..size {
        assert_eq!(peek(C_BASE + i), 3 * i as Word, "c[{i}] wrong");
    }
}

/// Builds a TCF machine for `variant` on `config` running `program`.
pub fn tcf_machine(config: &MachineConfig, variant: Variant, program: Program) -> TcfMachine {
    TcfMachine::new(config.clone(), variant, program)
}

/// Builds a TCF machine with an explicit allocation policy.
pub fn tcf_machine_alloc(
    config: &MachineConfig,
    variant: Variant,
    program: Program,
    alloc: Allocation,
) -> TcfMachine {
    TcfMachine::with_allocation(config.clone(), variant, program, alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_compile() {
        tcf_vector_add(64);
        loop_vector_add(64);
        guard_vector_add(8);
        tcf_prefix(64);
        loop_prefix(64);
        tcf_scan(64);
        loop_scan(64);
        fork_scan(32);
        tcf_two_way(64);
        masked_two_way(64);
        tcf_numa_seq(10, 4);
        plain_seq(10);
        task_program(10);
        context_switch_program(8, 4096);
    }

    #[test]
    fn tcf_vector_add_runs_correctly() {
        let cfg = MachineConfig::small();
        let mut m = tcf_machine(&cfg, Variant::SingleInstruction, tcf_vector_add(128));
        init_arrays_tcf(&mut m, 128);
        m.run(10_000).unwrap();
        check_vector_add(|a| m.peek(a).unwrap(), 128);
    }

    #[test]
    fn loop_vector_add_runs_correctly_on_baseline() {
        let cfg = MachineConfig::small();
        let mut m = PramMachine::new(cfg, loop_vector_add(128));
        init_arrays_pram(&mut m, 128);
        m.run(10_000).unwrap();
        check_vector_add(|a| m.peek(a).unwrap(), 128);
    }

    #[test]
    fn scan_versions_agree() {
        let cfg = MachineConfig::small();
        let size = 64;
        let run_tcf = |variant, program| {
            let mut m = tcf_machine(&cfg, variant, program);
            for j in 0..size {
                m.poke(A_BASE + j, 1).unwrap();
            }
            m.run(100_000).unwrap();
            (0..size)
                .map(|j| m.peek(A_BASE + j).unwrap())
                .collect::<Vec<_>>()
        };
        let tcf = run_tcf(Variant::SingleInstruction, tcf_scan(size));
        let fork = run_tcf(Variant::MultiInstruction, fork_scan(size));
        let expected: Vec<Word> = (1..=size as Word).collect();
        assert_eq!(tcf, expected);
        assert_eq!(fork, expected);

        let mut m = PramMachine::new(cfg, loop_scan(size));
        for j in 0..size {
            m.poke(A_BASE + j, 1).unwrap();
        }
        m.run(100_000).unwrap();
        let baseline: Vec<Word> = (0..size).map(|j| m.peek(A_BASE + j).unwrap()).collect();
        assert_eq!(baseline, expected);
    }
}
