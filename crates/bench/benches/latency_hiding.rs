//! Figure 6 bench: latency hiding in the issue pipeline. Prints the
//! simulated utilization across issue-window lengths (the crossover where
//! the window covers the memory round trip), then benchmarks the pipeline
//! engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tcf_machine::{GroupPipeline, IssueUnit, MachineStats, Trace};
use tcf_net::{Network, Topology};

fn utilization_for(units: usize, hop_latency: u64) -> f64 {
    let mut net = Network::new(Topology::Crossbar { nodes: 4 }, hop_latency);
    let pipe = GroupPipeline::new(0, 2, 1);
    let work: Vec<IssueUnit> = (0..units)
        .map(|i| IssueUnit::shared_mem(1, i, 1 + (i % 3)))
        .collect();
    let mut trace = Trace::disabled();
    let mut stats = MachineStats::default();
    let out = pipe.run_step(0, &work, false, &mut net, &mut trace, &mut stats);
    units as f64 / out.cycles() as f64
}

fn bench_latency_hiding(c: &mut Criterion) {
    println!("== Figure 6 sweep: issue-window length vs utilization (roundtrip ~6 cycles) ==");
    println!("{:>8}  {:>12}", "units", "utilization");
    for units in [1usize, 2, 4, 8, 16, 32, 64] {
        println!("{units:>8}  {:>12.2}", utilization_for(units, 2));
    }
    println!("(utilization saturates once the window covers the memory round trip)");

    let mut g = c.benchmark_group("latency_hiding");
    for units in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("pipeline_step", units), &units, |b, &u| {
            b.iter(|| black_box(utilization_for(u, 2)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_latency_hiding);
criterion_main!(benches);
