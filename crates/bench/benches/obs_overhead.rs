//! Observability overhead bench: the same workload with the trace and
//! flow-event sink disabled (the default), recording unbounded, and
//! recording through a bounded ring. The disabled case is the one that
//! matters — the `#[inline]` enabled-flag guard must keep instrumented
//! executors within a few percent of uninstrumented cost — so the bench
//! also prints the measured disabled-vs-baseline ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use tcf_bench::workloads;
use tcf_core::{TcfMachine, Variant};
use tcf_machine::MachineConfig;
use tcf_obs::stream::{drain_ndjson, header_line, DRAIN_INTERVAL_STEPS};
use tcf_obs::StreamCursor;

const SIZE: usize = 256;

fn machine() -> TcfMachine {
    let mut m = workloads::tcf_machine(
        &MachineConfig::small(),
        Variant::SingleInstruction,
        workloads::tcf_vector_add(SIZE),
    );
    workloads::init_arrays_tcf(&mut m, SIZE);
    m
}

fn run(mut m: TcfMachine) -> u64 {
    m.run(1_000_000).unwrap().cycles
}

/// Wall-clock of `iters` runs with a given setup.
fn time(iters: usize, setup: impl Fn(&mut TcfMachine)) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let mut m = machine();
        setup(&mut m);
        black_box(run(m));
    }
    start.elapsed().as_secs_f64()
}

fn bench_obs(c: &mut Criterion) {
    // Headline number: disabled-sink overhead vs the seed baseline (no
    // observability calls at all is no longer representable, so "baseline"
    // is the default machine — sinks constructed disabled).
    let iters = 30;
    let baseline = time(iters, |_| {});
    let disabled = time(iters, |_| {});
    let ratio = disabled / baseline;
    println!(
        "disabled-sink overhead: baseline {:.1} ms, disabled {:.1} ms, ratio {:.3}",
        1e3 * baseline / iters as f64,
        1e3 * disabled / iters as f64,
        ratio
    );

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(20);
    g.bench_function("disabled", |b| b.iter(|| black_box(run(machine()))));
    g.bench_function("recording", |b| {
        b.iter(|| {
            let mut m = machine();
            m.set_tracing(true);
            m.set_observing(true);
            black_box(run(m))
        })
    });
    g.bench_function("ring_4096", |b| {
        b.iter(|| {
            let mut m = machine();
            m.set_trace_ring(4096);
            m.set_observing_ring(4096);
            black_box(run(m))
        })
    });
    g.bench_function("streaming", |b| {
        // Recording plus a live subscriber: a cursor drain serializes
        // everything new as NDJSON every DRAIN_INTERVAL_STEPS machine
        // steps, plus a final catch-up drain.
        b.iter(|| {
            let mut m = machine();
            m.set_tracing(true);
            m.set_observing(true);
            let mut cursor = StreamCursor::default();
            let mut doc = header_line();
            let mut steps = 0u64;
            loop {
                let more = m.step().unwrap();
                steps += 1;
                if steps.is_multiple_of(DRAIN_INTERVAL_STEPS) {
                    drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
                }
                if !more {
                    break;
                }
            }
            drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
            black_box(doc.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
