//! Figures 7–12 bench: the mixed-thickness workload scheduled under each
//! variant. Prints the schedule strips once, then benchmarks the
//! per-variant simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tcf_bench::figures;
use tcf_core::{TcfMachine, Variant};
use tcf_isa::asm::assemble;

const MIXED: &str = "main:
        halt
    task:
        mfs r1, tid
        add r2, r1, 1
        add r2, r2, r2
        add r2, r2, r1
        halt
    ";

fn bench_variants(c: &mut Criterion) {
    for n in 7..=12 {
        println!(
            "{}",
            figures::figure(n, &tcf_bench::small_config()).unwrap()
        );
    }

    let mut g = c.benchmark_group("variants_schedule");
    g.sample_size(20);
    let program = assemble(MIXED).unwrap();
    let entry = program.label("task").unwrap();
    for (name, variant) in [
        ("single_instruction", Variant::SingleInstruction),
        ("balanced_b4", Variant::Balanced { bound: 4 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m =
                    TcfMachine::new(figures::single_group_config(), variant, program.clone());
                for t in [12usize, 3, 1, 8] {
                    m.spawn_task(entry, t).unwrap();
                }
                black_box(m.run(10_000).unwrap());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
