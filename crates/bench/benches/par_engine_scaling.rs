//! Host-side scaling of the deterministic parallel engine: the same
//! paper-scale thick workload simulated sequentially and under
//! `par:{2,4,8}` workers. The engine is bit-deterministic at every worker
//! count, so this bench measures pure wall-clock scaling.
//!
//! The speedup is host-dependent: on a multi-core host the fragment and
//! memory-module shards run concurrently (the workload below fans a
//! ~4096-thick flow over 16 groups); on a single-hardware-thread host the
//! pool degenerates to the coordinator draining its own queue and the
//! numbers show engine overhead instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tcf_bench::{paper_config, workloads};
use tcf_core::{Engine, Variant};

fn run_once(engine: Engine, size: usize) -> u64 {
    let config = paper_config();
    let mut m = workloads::tcf_machine(
        &config,
        Variant::SingleInstruction,
        workloads::tcf_vector_add(size),
    );
    m.set_engine(engine);
    workloads::init_arrays_tcf(&mut m, size);
    let s = m.run(10_000_000).unwrap();
    workloads::check_vector_add(|a| m.peek(a).unwrap(), size);
    s.cycles
}

fn bench_engines(c: &mut Criterion) {
    let size = 4096;
    let seq_cycles = run_once(Engine::Sequential, size);
    println!("== Parallel engine scaling (thick vector add, size {size}) ==");
    println!(
        "  host parallelism: {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    for engine in [
        Engine::Sequential,
        Engine::Parallel { workers: 2 },
        Engine::Parallel { workers: 4 },
        Engine::Parallel { workers: 8 },
    ] {
        // Determinism spot-check alongside the timing: identical
        // simulated cycles at every worker count.
        assert_eq!(run_once(engine, size), seq_cycles);
    }
    println!("  simulated cycles identical across engines: {seq_cycles}");

    let mut g = c.benchmark_group("par_engine");
    g.sample_size(10);
    for (name, engine) in [
        ("seq", Engine::Sequential),
        ("par2", Engine::Parallel { workers: 2 }),
        ("par4", Engine::Parallel { workers: 4 }),
        ("par8", Engine::Parallel { workers: 8 }),
    ] {
        g.bench_with_input(
            BenchmarkId::new("vector_add_4096", name),
            &engine,
            |b, &e| b.iter(|| black_box(run_once(e, size))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
