//! Ablation: distance-aware network behaviour — topology, latency
//! proportionality, congestion, and shared-memory placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tcf_net::{Network, Topology};

fn all_to_one(topology: Topology, hop_latency: u64) -> u64 {
    let mut net = Network::new(topology, hop_latency);
    let n = topology.nodes();
    let msgs: Vec<(usize, usize)> = (0..n).filter(|&s| s != 0).map(|s| (s, 0)).collect();
    let (_, done) = net.send_batch(&msgs, 0);
    done
}

fn uniform_random(topology: Topology, hop_latency: u64, rounds: usize) -> u64 {
    let mut net = Network::new(topology, hop_latency);
    let n = topology.nodes();
    let mut done = 0;
    // Deterministic pseudo-random pairs (LCG).
    let mut x = 12345u64;
    for r in 0..rounds {
        let msgs: Vec<(usize, usize)> = (0..n)
            .map(|s| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s, (x >> 33) as usize % n)
            })
            .collect();
        let (_, d) = net.send_batch(&msgs, r as u64 * 64);
        done = d;
    }
    done
}

fn bench_network(c: &mut Criterion) {
    println!("== Network ablation: completion cycle of all-to-one vs uniform traffic ==");
    let topologies = [
        ("ring16", Topology::Ring { nodes: 16 }),
        (
            "mesh4x4",
            Topology::Mesh2D {
                width: 4,
                height: 4,
            },
        ),
        ("crossbar16", Topology::Crossbar { nodes: 16 }),
    ];
    println!(
        "{:>12} {:>14} {:>18}",
        "topology", "all-to-one", "uniform (8 rounds)"
    );
    for (name, t) in topologies {
        println!(
            "{name:>12} {:>14} {:>18}",
            all_to_one(t, 1),
            uniform_random(t, 1, 8)
        );
    }
    println!("(all-to-one exposes the destination bottleneck; distance shows in the ring)");

    let mut g = c.benchmark_group("network");
    for (name, t) in topologies {
        g.bench_with_input(BenchmarkId::new("uniform", name), &t, |b, &topo| {
            b.iter(|| black_box(uniform_random(topo, 1, 8)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
