//! Figure 13 bench: the TCF storage buffer capacity sweep (the
//! multitasking knee). Prints the simulated sweep once, then benchmarks
//! the under- and over-capacity cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tcf_bench::{figures, workloads};
use tcf_core::{TcfMachine, Variant};

fn run_with_buffer(slots: usize, ntasks: usize) -> u64 {
    let mut config = figures::single_group_config();
    config.tcf_buffer_slots = slots;
    let program = workloads::task_program(40);
    let entry = program.label("task").unwrap();
    let mut m = TcfMachine::new(config, Variant::SingleInstruction, program);
    for _ in 0..ntasks {
        m.spawn_task(entry, 1).unwrap();
    }
    m.run(1_000_000).unwrap().cycles
}

fn bench_buffer(c: &mut Criterion) {
    println!("{}", figures::fig13());

    let mut g = c.benchmark_group("tcf_buffer");
    g.sample_size(20);
    for slots in [2usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("sixteen_tasks", slots), &slots, |b, &s| {
            b.iter(|| black_box(run_with_buffer(s, 16)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
