//! §4 programming-example bench (P1–P7): prints the paired comparison
//! tables once, then benchmarks the headline pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tcf_bench::{progs, small_config, workloads};
use tcf_core::Variant;

fn bench_progs(c: &mut Criterion) {
    let config = small_config();
    println!("{}", progs::report(&config));

    let mut g = c.benchmark_group("prog_examples");
    g.sample_size(10);
    let size = 4 * config.total_threads();

    g.bench_function("p1_tcf_thick_add", |b| {
        b.iter(|| {
            let mut m = workloads::tcf_machine(
                &config,
                Variant::SingleInstruction,
                workloads::tcf_vector_add(size),
            );
            workloads::init_arrays_tcf(&mut m, size);
            black_box(m.run(1_000_000).unwrap());
        })
    });
    g.bench_function("p1_loop_add_baseline", |b| {
        b.iter(|| {
            let mut m = workloads::tcf_machine(
                &config,
                Variant::SingleOperation,
                workloads::loop_vector_add(size),
            );
            workloads::init_arrays_tcf(&mut m, size);
            black_box(m.run(1_000_000).unwrap());
        })
    });

    let scan_size = config.total_threads();
    g.bench_function("p7_tcf_scan", |b| {
        b.iter(|| {
            let mut m = workloads::tcf_machine(
                &config,
                Variant::SingleInstruction,
                workloads::tcf_scan(scan_size),
            );
            for j in 0..scan_size {
                m.poke(workloads::A_BASE + j, 1).unwrap();
            }
            black_box(m.run(1_000_000).unwrap());
        })
    });
    g.bench_function("p7_fork_scan_xmt", |b| {
        b.iter(|| {
            let mut m = workloads::tcf_machine(
                &config,
                Variant::MultiInstruction,
                workloads::fork_scan(scan_size),
            );
            for j in 0..scan_size {
                m.poke(workloads::A_BASE + j, 1).unwrap();
            }
            black_box(m.run(1_000_000).unwrap());
        })
    });
    g.bench_function("p6_thick_prefix", |b| {
        b.iter(|| {
            let mut m = workloads::tcf_machine(
                &config,
                Variant::SingleInstruction,
                workloads::tcf_prefix(size),
            );
            black_box(m.run(1_000_000).unwrap());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_progs);
criterion_main!(benches);
