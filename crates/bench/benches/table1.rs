//! Table 1 bench: regenerates the property/cost table and benchmarks the
//! cost probes (fetch pressure, task switch, flow branch) per variant.
//!
//! Simulated-cycle results are printed once up front; Criterion then
//! measures host-side simulation throughput of each probe.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tcf_bench::{small_config, table1, workloads};
use tcf_core::Variant;

fn bench_table1(c: &mut Criterion) {
    let config = small_config();
    println!("{}", table1::report(&config));

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    let size = 4 * config.total_threads();
    for (name, variant) in [
        ("fetch_probe_single_instruction", Variant::SingleInstruction),
        ("fetch_probe_balanced_b8", Variant::Balanced { bound: 8 }),
        ("fetch_probe_single_operation", Variant::SingleOperation),
    ] {
        let program = match variant {
            Variant::SingleOperation => workloads::loop_vector_add(size),
            _ => workloads::tcf_vector_add(size),
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = workloads::tcf_machine(&config, variant, program.clone());
                workloads::init_arrays_tcf(&mut m, size);
                black_box(m.run(1_000_000).unwrap());
            })
        });
    }

    g.bench_function("task_switch_probe", |b| {
        b.iter(|| black_box(table1::measured_task_switch(&config)))
    });
    g.bench_function("flow_branch_probe", |b| {
        b.iter(|| black_box(table1::measured_flow_branch(&config)))
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
