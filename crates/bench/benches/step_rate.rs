//! Hot-path step-rate bench: wall-clock throughput of the cycle-level
//! step loop on every steady-state workload in [`Workload::ALL`] (thick
//! PRAM flow, thin NUMA flow, mixed multitasking, broadcast stride
//! sweep, lane-id reduction, branchy divergence, masked divergent
//! compressed). `repro bench-json`
//! exports the same probes as machine-readable `BENCH_hotpath.json`;
//! docs/PERFORMANCE.md explains how to read both.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tcf_bench::hotpath::Workload;

fn bench_step_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_rate");
    g.sample_size(10);
    for w in Workload::ALL {
        let program = w.program();
        g.bench_function(w.name(), |b| {
            b.iter(|| {
                let mut m = w.build(&program);
                black_box(w.run(&mut m))
            })
        });
    }
    g.finish();

    // Context for the wall-clock numbers: simulated work per run.
    for w in Workload::ALL {
        let m = tcf_bench::hotpath::measure(w, 3);
        println!(
            "step_rate/{}: {} steps, {} issued units -> {:.0} steps/s, {:.0} instrs/s",
            w.name(),
            m.steps,
            m.instrs,
            m.steps_per_sec(),
            m.instrs_per_sec()
        );
    }
}

criterion_group!(benches, bench_step_rate);
criterion_main!(benches);
