//! Ablation: the Balanced variant's per-step operation bound `b`
//! (synchronization frequency vs load balance, §3.2/§4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tcf_bench::{small_config, workloads};
use tcf_core::Variant;

fn bench_bounds(c: &mut Criterion) {
    let config = small_config();
    let size = 4 * config.total_threads();

    println!("== Balanced bound sweep (simulated cycles, vector add size {size}) ==");
    for bound in [1usize, 2, 4, 8, 16, 64] {
        let mut m = workloads::tcf_machine(
            &config,
            Variant::Balanced { bound },
            workloads::tcf_vector_add(size),
        );
        workloads::init_arrays_tcf(&mut m, size);
        let s = m.run(5_000_000).unwrap();
        println!(
            "  b = {bound:>3}: steps {:>5}, cycles {:>7}",
            s.steps, s.cycles
        );
    }

    let mut g = c.benchmark_group("balanced_bound");
    g.sample_size(10);
    for bound in [1usize, 8, 64] {
        g.bench_with_input(BenchmarkId::new("vector_add", bound), &bound, |b, &bd| {
            b.iter(|| {
                let mut m = workloads::tcf_machine(
                    &config,
                    Variant::Balanced { bound: bd },
                    workloads::tcf_vector_add(size),
                );
                workloads::init_arrays_tcf(&mut m, size);
                black_box(m.run(5_000_000).unwrap());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
