//! P8 bench: multitasking (tasks as TCFs vs ESM context switching) and
//! horizontal vs vertical allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tcf_bench::{progs, small_config, workloads};
use tcf_core::{Allocation, TcfMachine, Variant};
use tcf_pram::PramMachine;

fn bench_multitasking(c: &mut Criterion) {
    let config = small_config();
    println!("== P8: multitasking and flow allocation ==");
    println!("{}", progs::p8(&config).render());

    let mut g = c.benchmark_group("multitasking");
    g.sample_size(10);

    let program = workloads::task_program(100);
    let entry = program.label("task").unwrap();
    g.bench_function("tasks_as_tcfs", |b| {
        b.iter(|| {
            let mut m =
                TcfMachine::new(config.clone(), Variant::SingleInstruction, program.clone());
            for _ in 0..8 {
                m.spawn_task(entry, 1).unwrap();
            }
            black_box(m.run(1_000_000).unwrap());
        })
    });
    g.bench_function("esm_context_switch", |b| {
        b.iter(|| {
            let mut m = PramMachine::new(
                config.clone(),
                workloads::context_switch_program(config.regs_per_thread, config.shared_size / 2),
            );
            black_box(m.run(1_000_000).unwrap());
        })
    });

    let size = 4 * config.total_threads();
    for (name, alloc) in [
        ("horizontal_allocation", Allocation::Horizontal),
        ("vertical_allocation", Allocation::Vertical),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = workloads::tcf_machine_alloc(
                    &config,
                    Variant::SingleInstruction,
                    workloads::tcf_vector_add(size),
                    alloc,
                );
                workloads::init_arrays_tcf(&mut m, size);
                black_box(m.run(1_000_000).unwrap());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multitasking);
criterion_main!(benches);
