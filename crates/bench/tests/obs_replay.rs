//! Satellite property: replaying a run's recorded observability streams
//! (the cycle-level trace plus the flow-event stream) through
//! [`MetricsRegistry::replay`] reproduces the live `MachineStats`
//! counters *exactly*, on every execution variant. This pins down that
//! the event stream is complete — nothing the machine counts escapes the
//! recorder, and the recorder invents nothing.

use proptest::prelude::*;

use tcf_bench::workloads;
use tcf_core::{TcfMachine, Variant};
use tcf_isa::program::Program;
use tcf_machine::MachineConfig;
use tcf_obs::MetricsRegistry;

/// One (variant, program) pairing that the variant actually supports.
fn scenario(ix: usize, size: usize) -> (Variant, Program, &'static str) {
    match ix {
        0 => (
            Variant::SingleInstruction,
            workloads::tcf_two_way(size),
            "si/two-way",
        ),
        1 => (
            Variant::Balanced { bound: 8 },
            workloads::tcf_vector_add(size),
            "balanced/vector-add",
        ),
        2 => (
            Variant::MultiInstruction,
            workloads::fork_scan(16),
            "mi/fork-scan",
        ),
        3 => (
            Variant::SingleOperation,
            workloads::loop_vector_add(size),
            "so/loop-vector-add",
        ),
        4 => (
            Variant::ConfigurableSingleOperation,
            workloads::tcf_numa_seq(20, 4),
            "cso/numa-seq",
        ),
        _ => (
            Variant::FixedThickness { width: 16 },
            workloads::masked_two_way(size),
            "ft/masked-two-way",
        ),
    }
}

fn check_replay_matches(ix: usize, size: usize) {
    let (variant, program, name) = scenario(ix, size);
    let mut m = TcfMachine::new(MachineConfig::small(), variant, program);
    m.set_tracing(true);
    m.set_observing(true);
    if ix != 4 {
        workloads::init_arrays_tcf(&mut m, size.max(16));
    }
    let summary = m.run(5_000_000).expect("scenario runs to completion");
    let s = summary.machine;

    let r = MetricsRegistry::replay(&m.trace().events(), &m.obs().events());
    let pairs = [
        ("machine.steps", s.steps),
        ("machine.cycles", s.cycles),
        ("machine.compute_ops", s.compute_ops),
        ("machine.shared_refs", s.shared_refs),
        ("machine.local_refs", s.local_refs),
        ("machine.fetches", s.fetches),
        ("machine.bubbles", s.bubbles),
        ("machine.overhead_cycles", s.overhead_cycles),
        ("machine.spill_refs", s.spill_refs),
    ];
    for (metric, live) in pairs {
        assert_eq!(
            r.counter(metric),
            Some(live),
            "{name}: replayed {metric} disagrees with live MachineStats"
        );
    }
    // Snapshots close exactly one step each, in order, ending at the
    // final counters.
    assert_eq!(r.snapshots().len() as u64, s.steps, "{name}: snapshots");
    let last = r.snapshots().last().expect("at least one step");
    assert_eq!(last.cycle, s.cycles, "{name}: final snapshot cycle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replay_reproduces_machine_stats(ix in 0usize..6, quarters in 1usize..5) {
        check_replay_matches(ix, 16 * quarters);
    }
}

#[test]
fn replay_matches_on_every_variant_smoke() {
    for ix in 0..6 {
        check_replay_matches(ix, 32);
    }
}
