//! Chrome `trace_event` JSON export.
//!
//! Produces a JSON document loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`:
//!
//! * **pid 0 — "groups"**: one track per processor group. Consecutive
//!   cycles with the same issue kind and flow are merged into one complete
//!   (`ph: "X"`) span named by [`UnitKind::as_str`], with the flow in
//!   `args`.
//! * **pid 1 — "flows"**: one track per flow, carrying the lifecycle
//!   spans — `spawn`, `split`, `join`, `mode_switch`, `thickness`,
//!   `reload`, `halt`, and `wait` spans stretched between matching
//!   `WaitBegin`/`WaitEnd` events.
//!
//! One simulated cycle maps to one microsecond of trace time (`ts` is in
//! µs in the trace_event format). High-volume bookkeeping events (`Fetch`,
//! `Spill`, `StepEnd`) are deliberately not exported.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{FlowEvent, TimedEvent};
use crate::trace::{FlowTag, TraceEvent};

/// One complete (`ph: "X"`) span before serialization.
struct Span<'a> {
    pid: u32,
    tid: u64,
    ts: u64,
    dur: u64,
    name: &'a str,
    args: Vec<(&'a str, String)>,
}

fn push_span(out: &mut String, first: &mut bool, span: &Span<'_>) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\"",
        span.pid, span.tid, span.ts, span.dur, span.name
    );
    if !span.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in span.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push('}');
}

fn push_meta(
    out: &mut String,
    first: &mut bool,
    pid: u32,
    tid: Option<u64>,
    kind: &str,
    name: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(out, "{{\"ph\":\"M\",\"pid\":{pid}");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    let _ = write!(
        out,
        ",\"name\":\"{kind}\",\"args\":{{\"name\":\"{name}\"}}}}"
    );
}

/// Renders a trace and a flow-event stream as a Chrome `trace_event` JSON
/// document (`{"traceEvents": [...]}`).
pub fn chrome_trace(trace: &[TraceEvent], events: &[TimedEvent]) -> String {
    chrome_trace_with_drops(trace, events, 0, 0)
}

/// [`chrome_trace`], declaring how many events each ring buffer evicted
/// before export. Nonzero counts surface as global instant events named
/// `truncated: N trace events dropped` / `… flow events dropped` at the
/// start of the timeline, so a clipped recording is visibly clipped in
/// Perfetto rather than silently short. With both counts 0 the output is
/// byte-identical to [`chrome_trace`].
pub fn chrome_trace_with_drops(
    trace: &[TraceEvent],
    events: &[TimedEvent],
    trace_dropped: u64,
    events_dropped: u64,
) -> String {
    chrome_trace_with_workers(trace, events, trace_dropped, events_dropped, &[])
}

/// [`chrome_trace_with_drops`] plus a **pid 2 — "workers"** process: one
/// track per engine worker carrying a single `busy` span whose length is
/// the lanes the worker executed, with the lane share in the track name —
/// the per-worker utilization view. With `worker_lanes` empty the output
/// is byte-identical to [`chrome_trace_with_drops`].
pub fn chrome_trace_with_workers(
    trace: &[TraceEvent],
    events: &[TimedEvent],
    trace_dropped: u64,
    events_dropped: u64,
    worker_lanes: &[u64],
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;

    for (dropped, what) in [(trace_dropped, "trace"), (events_dropped, "flow")] {
        if dropped > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":0,\"s\":\"g\",\
                 \"name\":\"truncated: {dropped} {what} events dropped\"}}"
            );
        }
    }

    // --- pid 0: per-group issue tracks -------------------------------
    let mut groups: BTreeMap<usize, Vec<&TraceEvent>> = BTreeMap::new();
    for e in trace {
        groups.entry(e.group).or_default().push(e);
    }
    push_meta(&mut out, &mut first, 0, None, "process_name", "groups");
    for (g, evs) in &mut groups {
        push_meta(
            &mut out,
            &mut first,
            0,
            Some(*g as u64),
            "thread_name",
            &format!("group {g}"),
        );
        evs.sort_by_key(|e| e.cycle);
        // Merge consecutive cycles with identical (kind, flow) into one
        // span.
        let mut i = 0;
        while i < evs.len() {
            let start = evs[i];
            let mut end_cycle = start.cycle;
            let mut j = i + 1;
            while j < evs.len()
                && evs[j].kind == start.kind
                && evs[j].flow == start.flow
                && evs[j].cycle == end_cycle + 1
            {
                end_cycle = evs[j].cycle;
                j += 1;
            }
            let mut args = Vec::new();
            if let Some(f) = start.flow {
                args.push(("flow", f.to_string()));
            }
            push_span(
                &mut out,
                &mut first,
                &Span {
                    pid: 0,
                    tid: *g as u64,
                    ts: start.cycle,
                    dur: end_cycle - start.cycle + 1,
                    name: start.kind.as_str(),
                    args,
                },
            );
            i = j;
        }
    }

    // --- pid 1: per-flow lifecycle tracks ----------------------------
    push_meta(&mut out, &mut first, 1, None, "process_name", "flows");
    let mut named_flows: BTreeMap<FlowTag, ()> = BTreeMap::new();
    let mut wait_open: BTreeMap<FlowTag, u64> = BTreeMap::new();
    let mut flow_spans: Vec<Span<'static>> = Vec::new();
    let span = |flow: FlowTag, ts: u64, dur: u64, name: &'static str, args| Span {
        pid: 1,
        tid: flow as u64,
        ts,
        dur,
        name,
        args,
    };
    for ev in events {
        let Some(flow) = ev.event.flow() else {
            continue;
        };
        named_flows.entry(flow).or_insert(());
        match ev.event {
            FlowEvent::FlowSpawned { thickness, .. } => {
                flow_spans.push(span(
                    flow,
                    ev.cycle,
                    1,
                    "spawn",
                    vec![("thickness", thickness.to_string())],
                ));
            }
            FlowEvent::Split { arms, .. } => {
                flow_spans.push(span(
                    flow,
                    ev.cycle,
                    1,
                    "split",
                    vec![("arms", arms.to_string())],
                ));
            }
            FlowEvent::Join { parent, .. } => {
                let mut args = Vec::new();
                if let Some(p) = parent {
                    args.push(("parent", p.to_string()));
                }
                flow_spans.push(span(flow, ev.cycle, 1, "join", args));
            }
            FlowEvent::ModeSwitch { mode, .. } => {
                flow_spans.push(span(
                    flow,
                    ev.cycle,
                    1,
                    "mode_switch",
                    vec![("mode", format!("\"{}\"", mode.as_str()))],
                ));
            }
            FlowEvent::ThicknessChange { from, to, .. } => {
                flow_spans.push(span(
                    flow,
                    ev.cycle,
                    1,
                    "thickness",
                    vec![("from", from.to_string()), ("to", to.to_string())],
                ));
            }
            FlowEvent::BufferReload { group, cost, .. } => {
                flow_spans.push(span(
                    flow,
                    ev.cycle,
                    cost.max(1),
                    "reload",
                    vec![("group", group.to_string()), ("cost", cost.to_string())],
                ));
            }
            FlowEvent::WaitBegin { .. } => {
                wait_open.entry(flow).or_insert(ev.cycle);
            }
            FlowEvent::WaitEnd { .. } => {
                if let Some(begin) = wait_open.remove(&flow) {
                    flow_spans.push(span(
                        flow,
                        begin,
                        (ev.cycle.saturating_sub(begin)).max(1),
                        "wait",
                        Vec::new(),
                    ));
                }
            }
            FlowEvent::FlowHalted { .. } => {
                flow_spans.push(span(flow, ev.cycle, 1, "halt", Vec::new()));
            }
            FlowEvent::Fetch { .. } | FlowEvent::Spill { .. } | FlowEvent::StepEnd { .. } => {}
        }
    }
    // Waits still open at end of stream: close them at their begin cycle.
    for (flow, begin) in wait_open {
        flow_spans.push(span(flow, begin, 1, "wait", Vec::new()));
    }
    for flow in named_flows.keys() {
        push_meta(
            &mut out,
            &mut first,
            1,
            Some(*flow as u64),
            "thread_name",
            &format!("flow {flow}"),
        );
    }
    for s in &flow_spans {
        push_span(&mut out, &mut first, s);
    }

    // --- pid 2: per-worker utilization tracks -------------------------
    if !worker_lanes.is_empty() {
        let total: u64 = worker_lanes.iter().sum();
        push_meta(&mut out, &mut first, 2, None, "process_name", "workers");
        for (w, &lanes) in worker_lanes.iter().enumerate() {
            let share = if total == 0 {
                0.0
            } else {
                lanes as f64 * 100.0 / total as f64
            };
            push_meta(
                &mut out,
                &mut first,
                2,
                Some(w as u64),
                "thread_name",
                &format!("worker {w} ({share:.1}% of lanes)"),
            );
            if lanes > 0 {
                push_span(
                    &mut out,
                    &mut first,
                    &Span {
                        pid: 2,
                        tid: w as u64,
                        ts: 0,
                        dur: lanes,
                        name: "busy",
                        args: vec![("lanes", lanes.to_string())],
                    },
                );
            }
        }
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Mode;
    use crate::json::validate_json;
    use crate::trace::UnitKind;

    fn unit(cycle: u64, flow: Option<FlowTag>, kind: UnitKind) -> TraceEvent {
        TraceEvent {
            cycle,
            group: 0,
            flow,
            thread: None,
            kind,
        }
    }

    fn timed(cycle: u64, event: FlowEvent) -> TimedEvent {
        TimedEvent {
            step: 0,
            cycle,
            event,
        }
    }

    #[test]
    fn empty_streams_are_valid_json() {
        let json = chrome_trace(&[], &[]);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn consecutive_same_kind_cycles_merge() {
        let trace = vec![
            unit(0, Some(1), UnitKind::Compute),
            unit(1, Some(1), UnitKind::Compute),
            unit(2, Some(1), UnitKind::Compute),
            unit(3, None, UnitKind::Bubble),
        ];
        let json = chrome_trace(&trace, &[]);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"ts\":0,\"dur\":3,\"name\":\"compute\""));
        assert!(json.contains("\"ts\":3,\"dur\":1,\"name\":\"bubble\""));
    }

    #[test]
    fn lifecycle_spans_appear_on_flow_tracks() {
        let events = vec![
            timed(
                0,
                FlowEvent::FlowSpawned {
                    flow: 1,
                    parent: None,
                    thickness: 8,
                },
            ),
            timed(2, FlowEvent::Split { flow: 1, arms: 2 }),
            timed(
                2,
                FlowEvent::WaitBegin {
                    flow: 1,
                    pending: 2,
                },
            ),
            timed(
                5,
                FlowEvent::ModeSwitch {
                    flow: 2,
                    mode: Mode::Numa,
                },
            ),
            timed(
                9,
                FlowEvent::Join {
                    flow: 2,
                    parent: Some(1),
                },
            ),
            timed(9, FlowEvent::WaitEnd { flow: 1 }),
        ];
        let json = chrome_trace(&[], &events);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"name\":\"split\""));
        assert!(json.contains("\"name\":\"join\""));
        assert!(json.contains("\"name\":\"mode_switch\""));
        assert!(json.contains("\"ts\":2,\"dur\":7,\"name\":\"wait\""));
        assert!(json.contains("\"name\":\"flow 1\""));
        assert!(json.contains("\"name\":\"flow 2\""));
    }

    #[test]
    fn drop_counts_surface_as_instant_events() {
        let json = chrome_trace_with_drops(&[], &[], 12, 0);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"name\":\"truncated: 12 trace events dropped\""));
        assert!(!json.contains("flow events dropped"));
        // Zero drops emit nothing extra — byte-identical to chrome_trace.
        assert_eq!(
            chrome_trace_with_drops(&[], &[], 0, 0),
            chrome_trace(&[], &[])
        );
    }

    #[test]
    fn worker_track_reports_lane_shares() {
        let json = chrome_trace_with_workers(&[], &[], 0, 0, &[30, 10, 0]);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"name\":\"workers\""));
        assert!(json.contains("worker 0 (75.0% of lanes)"));
        assert!(json.contains("worker 2 (0.0% of lanes)"));
        assert!(json.contains("\"pid\":2,\"tid\":0,\"ts\":0,\"dur\":30,\"name\":\"busy\""));
        // No workers: byte-identical to the plain exporter.
        assert_eq!(
            chrome_trace_with_workers(&[], &[], 0, 0, &[]),
            chrome_trace(&[], &[])
        );
    }

    #[test]
    fn bookkeeping_events_are_excluded() {
        let events = vec![
            timed(0, FlowEvent::Fetch { flow: 1 }),
            timed(1, FlowEvent::StepEnd { step: 1, cycle: 1 }),
        ];
        let json = chrome_trace(&[], &events);
        validate_json(&json).expect("valid JSON");
        assert!(!json.contains("\"name\":\"fetch\""));
        assert!(!json.contains("step_end"));
    }
}
