//! ASCII Gantt rendering of trace event streams.
//!
//! Factored out of [`crate::Trace`] so any event slice — a live trace, a
//! ring-buffer window, or a stream re-read from CSV/JSON — renders the
//! same single-processor view.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{FlowTag, TraceEvent, UnitKind};

/// Renders the Gantt strip of one group from an event slice.
///
/// One row per flow (plus an idle row for bubbles), one column per cycle;
/// each cell is the [`UnitKind::glyph`] of what the slot executed. Cycles
/// are clipped to the window actually present in `events`.
pub fn render(events: &[TraceEvent], group: usize) -> String {
    let events: Vec<&TraceEvent> = events.iter().filter(|e| e.group == group).collect();
    if events.is_empty() {
        return format!("group {group}: (no events)\n");
    }
    let t0 = events.iter().map(|e| e.cycle).min().unwrap();
    let t1 = events.iter().map(|e| e.cycle).max().unwrap();
    let width = (t1 - t0 + 1) as usize;

    let mut rows: BTreeMap<Option<FlowTag>, Vec<char>> = BTreeMap::new();
    for e in &events {
        let key = if e.kind == UnitKind::Bubble {
            None
        } else {
            e.flow
        };
        rows.entry(key).or_insert_with(|| vec![' '; width])[(e.cycle - t0) as usize] =
            e.kind.glyph();
    }

    let mut out = String::new();
    let _ = writeln!(out, "group {group}, cycles {t0}..={t1}");
    for (flow, cells) in rows {
        let label = match flow {
            Some(f) => format!("flow {f:>3}"),
            None => "  (idle)".to_string(),
        };
        let _ = writeln!(out, "  {label} |{}|", cells.into_iter().collect::<String>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, group: usize, flow: Option<FlowTag>, kind: UnitKind) -> TraceEvent {
        TraceEvent {
            cycle,
            group,
            flow,
            thread: None,
            kind,
        }
    }

    #[test]
    fn renders_header_and_rows() {
        let events = vec![
            ev(4, 1, Some(3), UnitKind::Compute),
            ev(5, 1, None, UnitKind::Bubble),
            ev(6, 1, Some(3), UnitKind::FlowOverhead),
        ];
        let g = render(&events, 1);
        assert!(g.starts_with("group 1, cycles 4..=6"));
        assert!(g.contains("flow   3 |# +|"));
        assert!(g.contains("(idle) | . |"));
    }

    #[test]
    fn other_groups_are_filtered_out() {
        let events = vec![ev(0, 0, Some(1), UnitKind::Compute)];
        assert!(render(&events, 2).contains("no events"));
    }
}
