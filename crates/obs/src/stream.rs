//! Incremental NDJSON event streaming.
//!
//! Turns the batch sinks into a live telemetry wire: a subscriber holds a
//! [`StreamCursor`] into the trace and flow-event buffers and periodically
//! appends everything new as newline-delimited JSON (`tcf-obs-stream/v1`).
//! The format round-trips: [`parse_stream`] reconstructs the exact
//! `TraceEvent`/`TimedEvent` sequences, so a streamed run replayed through
//! the batch exporters (`crate::chrome`, `MetricsRegistry::replay`) is
//! byte-identical to a non-streamed run's artifacts — the contract
//! `repro --stream` and its round-trip test hold.
//!
//! One JSON object per line; the first line is the schema header. Line
//! shapes (all keys fixed, values plain JSON):
//!
//! ```text
//! {"schema":"tcf-obs-stream/v1"}
//! {"t":"trace","cycle":4,"group":0,"flow":1,"thread":null,"kind":"compute"}
//! {"t":"flow","step":1,"cycle":7,"event":"split","flow":1,"arms":2}
//! {"t":"drop","stream":"trace","missed":128}
//! ```
//!
//! `drop` lines make ring-buffer truncation explicit on the wire: a
//! subscriber that fell behind a bounded sink learns exactly how many
//! events it lost (drop-aware resume), instead of silently re-syncing.
//! Like the rest of the crate, encoding and parsing are hand-rolled — the
//! workspace deliberately has no JSON dependency.

use std::fmt::Write as _;

use crate::event::{FlowEvent, Mode, TimedEvent};
use crate::sink::ObsSink;
use crate::trace::{Trace, TraceEvent, UnitKind};

/// Schema identifier of the NDJSON stream, following the
/// `tcf-bench-hotpath/v1` / `tcf-metrics/v1` convention.
pub const STREAM_SCHEMA: &str = "tcf-obs-stream/v1";

/// A subscriber's position in both event buffers. Start at
/// [`StreamCursor::default`] to stream from the beginning of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCursor {
    /// Next trace-event sequence number wanted.
    pub trace: u64,
    /// Next flow-event sequence number wanted.
    pub events: u64,
}

/// The schema header — the first line of every stream.
pub fn header_line() -> String {
    format!("{{\"schema\":\"{STREAM_SCHEMA}\"}}\n")
}

fn opt_json(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Encodes one trace event as an NDJSON line (newline included).
pub fn trace_line(e: &TraceEvent) -> String {
    format!(
        "{{\"t\":\"trace\",\"cycle\":{},\"group\":{},\"flow\":{},\"thread\":{},\"kind\":\"{}\"}}\n",
        e.cycle,
        e.group,
        opt_json(e.flow.map(u64::from)),
        opt_json(e.thread.map(|t| t as u64)),
        e.kind.as_str()
    )
}

/// Encodes one timed flow event as an NDJSON line (newline included).
pub fn flow_line(e: &TimedEvent) -> String {
    let mut out = format!(
        "{{\"t\":\"flow\",\"step\":{},\"cycle\":{},\"event\":\"{}\"",
        e.step,
        e.cycle,
        e.event.name()
    );
    match e.event {
        FlowEvent::FlowSpawned {
            flow,
            parent,
            thickness,
        } => {
            let _ = write!(
                out,
                ",\"flow\":{flow},\"parent\":{},\"thickness\":{thickness}",
                opt_json(parent.map(u64::from))
            );
        }
        FlowEvent::Split { flow, arms } => {
            let _ = write!(out, ",\"flow\":{flow},\"arms\":{arms}");
        }
        FlowEvent::Join { flow, parent } => {
            let _ = write!(
                out,
                ",\"flow\":{flow},\"parent\":{}",
                opt_json(parent.map(u64::from))
            );
        }
        FlowEvent::ModeSwitch { flow, mode } => {
            let _ = write!(out, ",\"flow\":{flow},\"mode\":\"{}\"", mode.as_str());
        }
        FlowEvent::ThicknessChange { flow, from, to } => {
            let _ = write!(out, ",\"flow\":{flow},\"from\":{from},\"to\":{to}");
        }
        FlowEvent::BufferReload { flow, group, cost } => {
            let _ = write!(out, ",\"flow\":{flow},\"group\":{group},\"cost\":{cost}");
        }
        FlowEvent::WaitBegin { flow, pending } => {
            let _ = write!(out, ",\"flow\":{flow},\"pending\":{pending}");
        }
        FlowEvent::WaitEnd { flow }
        | FlowEvent::FlowHalted { flow }
        | FlowEvent::Fetch { flow } => {
            let _ = write!(out, ",\"flow\":{flow}");
        }
        FlowEvent::Spill { flow, group } => {
            let _ = write!(out, ",\"flow\":{flow},\"group\":{group}");
        }
        FlowEvent::StepEnd { step, cycle } => {
            let _ = write!(out, ",\"end_step\":{step},\"end_cycle\":{cycle}");
        }
    }
    out.push_str("}\n");
    out
}

/// Encodes a truncation notice: `missed` events of `stream`
/// (`"trace"`/`"flow"`) were evicted before the subscriber drained them.
pub fn drop_line(stream: &str, missed: u64) -> String {
    format!("{{\"t\":\"drop\",\"stream\":\"{stream}\",\"missed\":{missed}}}\n")
}

/// Appends everything new in both buffers since `cursor` to `out` as
/// NDJSON lines (trace events first, then flow events, each stream in
/// order), advancing the cursor. Evictions the subscriber missed surface
/// as `drop` lines. This is the per-step pump of `repro --stream`.
pub fn drain_ndjson(trace: &Trace, obs: &ObsSink, cursor: &mut StreamCursor, out: &mut String) {
    let d = trace.drain_from(cursor.trace);
    if d.missed > 0 {
        out.push_str(&drop_line("trace", d.missed));
    }
    for e in &d.items {
        out.push_str(&trace_line(e));
    }
    cursor.trace = d.cursor;

    let d = obs.drain_from(cursor.events);
    if d.missed > 0 {
        out.push_str(&drop_line("flow", d.missed));
    }
    for e in &d.items {
        out.push_str(&flow_line(e));
    }
    cursor.events = d.cursor;
}

/// Both event streams reassembled from an NDJSON document, plus the drop
/// totals its `drop` lines reported.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamReassembly {
    /// Trace events, in stream order.
    pub trace: Vec<TraceEvent>,
    /// Flow events, in stream order.
    pub events: Vec<TimedEvent>,
    /// Trace events the stream declared dropped.
    pub trace_dropped: u64,
    /// Flow events the stream declared dropped.
    pub events_dropped: u64,
}

/// Extracts the raw text of `"key":<value>` from one NDJSON line.
/// Values in this schema are numbers, `null`, or bare identifier strings
/// (event/kind/mode names — never escaped), so a scan suffices.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        let end = rest.find([',', '}'])?;
        Some(&rest[..end])
    }
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("missing or bad \"{key}\" in: {line}"))
}

fn usize_field(line: &str, key: &str) -> Result<usize, String> {
    raw_field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("missing or bad \"{key}\" in: {line}"))
}

fn opt_u32_field(line: &str, key: &str) -> Result<Option<u32>, String> {
    match raw_field(line, key) {
        None => Err(format!("missing \"{key}\" in: {line}")),
        Some("null") => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad \"{key}\" in: {line}")),
    }
}

fn str_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    raw_field(line, key).ok_or_else(|| format!("missing \"{key}\" in: {line}"))
}

fn parse_flow_event(line: &str) -> Result<FlowEvent, String> {
    let name = str_field(line, "event")?;
    let flow = |key: &str| opt_u32_field(line, key);
    let req_flow = || flow("flow")?.ok_or_else(|| format!("null \"flow\" in: {line}"));
    Ok(match name {
        "flow_spawned" => FlowEvent::FlowSpawned {
            flow: req_flow()?,
            parent: flow("parent")?,
            thickness: usize_field(line, "thickness")?,
        },
        "split" => FlowEvent::Split {
            flow: req_flow()?,
            arms: usize_field(line, "arms")?,
        },
        "join" => FlowEvent::Join {
            flow: req_flow()?,
            parent: flow("parent")?,
        },
        "mode_switch" => FlowEvent::ModeSwitch {
            flow: req_flow()?,
            mode: Mode::from_name(str_field(line, "mode")?)
                .ok_or_else(|| format!("bad \"mode\" in: {line}"))?,
        },
        "thickness_change" => FlowEvent::ThicknessChange {
            flow: req_flow()?,
            from: usize_field(line, "from")?,
            to: usize_field(line, "to")?,
        },
        "buffer_reload" => FlowEvent::BufferReload {
            flow: req_flow()?,
            group: usize_field(line, "group")?,
            cost: u64_field(line, "cost")?,
        },
        "wait_begin" => FlowEvent::WaitBegin {
            flow: req_flow()?,
            pending: usize_field(line, "pending")?,
        },
        "wait_end" => FlowEvent::WaitEnd { flow: req_flow()? },
        "flow_halted" => FlowEvent::FlowHalted { flow: req_flow()? },
        "fetch" => FlowEvent::Fetch { flow: req_flow()? },
        "spill" => FlowEvent::Spill {
            flow: req_flow()?,
            group: usize_field(line, "group")?,
        },
        "step_end" => FlowEvent::StepEnd {
            step: u64_field(line, "end_step")?,
            cycle: u64_field(line, "end_cycle")?,
        },
        other => return Err(format!("unknown event \"{other}\" in: {line}")),
    })
}

/// Parses a `tcf-obs-stream/v1` NDJSON document back into its event
/// streams. The first non-empty line must be the schema header; unknown
/// line types or malformed fields are errors (the writer and reader are
/// the same schema version by construction).
pub fn parse_stream(s: &str) -> Result<StreamReassembly, String> {
    let mut lines = s.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some(header) if raw_field(header, "schema") == Some(STREAM_SCHEMA) => {}
        Some(header) => return Err(format!("bad stream header: {header}")),
        None => return Err("empty stream".to_string()),
    }
    let mut out = StreamReassembly::default();
    for line in lines {
        match str_field(line, "t")? {
            "trace" => out.trace.push(TraceEvent {
                cycle: u64_field(line, "cycle")?,
                group: usize_field(line, "group")?,
                flow: opt_u32_field(line, "flow")?,
                thread: opt_u32_field(line, "thread")?.map(|t| t as usize),
                kind: UnitKind::from_name(str_field(line, "kind")?)
                    .ok_or_else(|| format!("bad \"kind\" in: {line}"))?,
            }),
            "flow" => out.events.push(TimedEvent {
                step: u64_field(line, "step")?,
                cycle: u64_field(line, "cycle")?,
                event: parse_flow_event(line)?,
            }),
            "drop" => {
                let missed = u64_field(line, "missed")?;
                match str_field(line, "stream")? {
                    "trace" => out.trace_dropped += missed,
                    "flow" => out.events_dropped += missed,
                    other => return Err(format!("unknown drop stream \"{other}\" in: {line}")),
                }
            }
            other => return Err(format!("unknown line type \"{other}\" in: {line}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::trace::FlowTag;

    fn all_flow_events() -> Vec<FlowEvent> {
        vec![
            FlowEvent::FlowSpawned {
                flow: 1,
                parent: None,
                thickness: 16,
            },
            FlowEvent::FlowSpawned {
                flow: 2,
                parent: Some(1),
                thickness: 8,
            },
            FlowEvent::Split { flow: 1, arms: 2 },
            FlowEvent::Join {
                flow: 2,
                parent: Some(1),
            },
            FlowEvent::ModeSwitch {
                flow: 2,
                mode: Mode::Numa,
            },
            FlowEvent::ThicknessChange {
                flow: 1,
                from: 16,
                to: 4,
            },
            FlowEvent::BufferReload {
                flow: 1,
                group: 3,
                cost: 9,
            },
            FlowEvent::WaitBegin {
                flow: 1,
                pending: 2,
            },
            FlowEvent::WaitEnd { flow: 1 },
            FlowEvent::FlowHalted { flow: 2 },
            FlowEvent::Fetch { flow: 1 },
            FlowEvent::Spill { flow: 1, group: 0 },
            FlowEvent::StepEnd { step: 3, cycle: 40 },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for (i, event) in all_flow_events().into_iter().enumerate() {
            let ev = TimedEvent {
                step: i as u64,
                cycle: 2 * i as u64,
                event,
            };
            let line = flow_line(&ev);
            validate_json(line.trim()).expect("line is valid JSON");
            let doc = format!("{}{}", header_line(), line);
            let re = parse_stream(&doc).expect("parses");
            assert_eq!(re.events, vec![ev], "event {i} diverged");
        }
    }

    #[test]
    fn trace_events_round_trip() {
        let evs = vec![
            TraceEvent {
                cycle: 0,
                group: 0,
                flow: Some(1 as FlowTag),
                thread: Some(3),
                kind: UnitKind::Compute,
            },
            TraceEvent {
                cycle: 1,
                group: 2,
                flow: None,
                thread: None,
                kind: UnitKind::Bubble,
            },
        ];
        let mut doc = header_line();
        for e in &evs {
            let line = trace_line(e);
            validate_json(line.trim()).expect("line is valid JSON");
            doc.push_str(&line);
        }
        let re = parse_stream(&doc).expect("parses");
        assert_eq!(re.trace, evs);
        assert!(re.events.is_empty());
    }

    #[test]
    fn incremental_drains_match_batch_export() {
        let mut trace = Trace::recording();
        let mut obs = ObsSink::recording();
        let mut cursor = StreamCursor::default();
        let mut doc = header_line();
        for step in 0..4u64 {
            for c in 0..3u64 {
                trace.push(TraceEvent {
                    cycle: step * 3 + c,
                    group: 0,
                    flow: Some(1),
                    thread: None,
                    kind: UnitKind::Compute,
                });
            }
            obs.emit(
                step + 1,
                (step + 1) * 3,
                FlowEvent::StepEnd {
                    step: step + 1,
                    cycle: (step + 1) * 3,
                },
            );
            drain_ndjson(&trace, &obs, &mut cursor, &mut doc);
        }
        let re = parse_stream(&doc).expect("parses");
        assert_eq!(re.trace, trace.events());
        assert_eq!(re.events, obs.events());
        assert_eq!(re.trace_dropped + re.events_dropped, 0);
    }

    #[test]
    fn drops_surface_as_drop_lines() {
        let trace = Trace::recording();
        let mut obs = ObsSink::ring(2);
        let mut cursor = StreamCursor::default();
        for i in 0..7 {
            obs.emit(1, i, FlowEvent::Fetch { flow: 1 });
        }
        let mut doc = header_line();
        drain_ndjson(&trace, &obs, &mut cursor, &mut doc);
        let re = parse_stream(&doc).expect("parses");
        assert_eq!(re.events_dropped, 5);
        assert_eq!(re.events.len(), 2);
        assert_eq!(cursor.events, obs.next_seq());
    }

    #[test]
    fn parser_rejects_foreign_documents() {
        assert!(parse_stream("").is_err());
        assert!(parse_stream("{\"schema\":\"something-else/v9\"}\n").is_err());
        let doc = format!("{}{}", header_line(), "{\"t\":\"mystery\"}\n");
        assert!(parse_stream(&doc).is_err());
    }
}
