//! Incremental NDJSON event streaming.
//!
//! Turns the batch sinks into a live telemetry wire: a subscriber holds a
//! [`StreamCursor`] into the trace and flow-event buffers and periodically
//! appends everything new as newline-delimited JSON (`tcf-obs-stream/v2`).
//! The format round-trips: [`parse_stream`] reconstructs the exact
//! `TraceEvent`/`TimedEvent` sequences, so a streamed run replayed through
//! the batch exporters (`crate::chrome`, `MetricsRegistry::replay`) is
//! byte-identical to a non-streamed run's artifacts — the contract
//! `repro --stream` and its round-trip test hold.
//!
//! One JSON object per line; the first line is the schema header. Line
//! shapes (all keys fixed, values plain JSON):
//!
//! ```text
//! {"schema":"tcf-obs-stream/v2"}
//! {"t":"trace","cycle":4,"group":0,"flow":1,"thread":null,"kind":"compute"}
//! {"t":"trun","cycle":4,"group":0,"flow":1,"thread0":0,"count":256,"first":2,"width":4,"kind":"compute"}
//! {"t":"brun","cycle":9,"group":0,"count":12,"kind":"bubble"}
//! {"t":"flow","step":1,"cycle":7,"event":"split","flow":1,"arms":2}
//! {"t":"drop","stream":"trace","missed":128}
//! ```
//!
//! `trun` and `brun` are run-length–compressed trace lines (new in v2):
//! a traced thick step expands each compute run to one unit per lane
//! (the PR 4 run-length contract), so the wire would otherwise carry ~1k
//! near-identical `trace` lines per machine step — the dominant cost of
//! the `obs_overhead_stream` bench. A `trun` covers `count` consecutive
//! events sharing group/flow/kind, with threads `thread0..thread0+count`
//! and the issue cadence's cycle shape: `first` events on `cycle`, then
//! `width` per following cycle. A `brun` covers `count` flow-less events
//! (drain bubbles) one cycle apart. [`parse_stream`] re-expands both to
//! the exact per-event sequence, so replay artifacts are unchanged; the
//! writer emits a run only when the events match those shapes exactly,
//! falling back to plain `trace` lines otherwise.
//!
//! `drop` lines make ring-buffer truncation explicit on the wire: a
//! subscriber that fell behind a bounded sink learns exactly how many
//! events it lost (drop-aware resume), instead of silently re-syncing.
//! Like the rest of the crate, encoding and parsing are hand-rolled — the
//! workspace deliberately has no JSON dependency.

use crate::event::{FlowEvent, Mode, TimedEvent};
use crate::sink::ObsSink;
use crate::trace::{Trace, TraceEvent, UnitKind};

/// Schema identifier of the NDJSON stream, following the
/// `tcf-bench-hotpath/v1` / `tcf-metrics/v1` convention.
pub const STREAM_SCHEMA: &str = "tcf-obs-stream/v2";

/// How many machine steps a streaming pump should let pass between
/// [`drain_ndjson`] calls. Draining every step costs a cursor walk per
/// step for a handful of fresh events; batching amortizes that without
/// changing the wire bytes (events are encoded exactly once either way,
/// in the same order). Callers with bounded sinks should keep the
/// interval well under `capacity / events_per_step` so nothing is
/// evicted unseen.
pub const DRAIN_INTERVAL_STEPS: u64 = 32;

/// A subscriber's position in both event buffers. Start at
/// [`StreamCursor::default`] to stream from the beginning of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCursor {
    /// Next trace-event sequence number wanted.
    pub trace: u64,
    /// Next flow-event sequence number wanted.
    pub events: u64,
}

/// The schema header — the first line of every stream.
pub fn header_line() -> String {
    format!("{{\"schema\":\"{STREAM_SCHEMA}\"}}\n")
}

/// Upper bound on one encoded NDJSON line: the longest line shape
/// (`trun` with 20-digit stamps in every numeric field) stays under 250
/// bytes; 256 leaves slack so a future field can't silently overflow
/// (the staging buffer below panics on overflow rather than truncating).
const LINE_CAP: usize = 256;

/// One NDJSON line staged on the stack and flushed to the document with
/// a single `push_str` — a hand-rolled `itoa` plus constant-fragment
/// copies, so the per-event encoders never touch the `core::fmt`
/// machinery (padding state, trait dispatch, per-`write!` error
/// plumbing) and the document `String` sees one append per line instead
/// of ~10. The streaming overhead bench (`obs_overhead_stream`) is why:
/// a traced thick run encodes ~500 events per machine step, and the
/// encoder has to keep pace with the simulation itself.
struct LineBuf {
    len: usize,
    buf: [u8; LINE_CAP],
}

impl LineBuf {
    #[inline]
    fn new() -> LineBuf {
        LineBuf {
            len: 0,
            buf: [0; LINE_CAP],
        }
    }

    /// Appends a constant fragment (key names, punctuation, enum names).
    #[inline]
    fn lit(&mut self, s: &str) {
        self.buf[self.len..self.len + s.len()].copy_from_slice(s.as_bytes());
        self.len += s.len();
    }

    /// Appends `v` in decimal.
    #[inline]
    fn num(&mut self, mut v: u64) {
        let mut tmp = [0u8; 20];
        let mut i = tmp.len();
        loop {
            i -= 1;
            tmp[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let n = tmp.len() - i;
        self.buf[self.len..self.len + n].copy_from_slice(&tmp[i..]);
        self.len += n;
    }

    /// Appends `v` in decimal, or the JSON literal `null`.
    #[inline]
    fn opt(&mut self, v: Option<u64>) {
        match v {
            Some(v) => self.num(v),
            None => self.lit("null"),
        }
    }

    /// Appends the staged line to the document.
    #[inline]
    fn flush(&self, out: &mut String) {
        // Only ASCII fragments and digits ever go in, so this never fails.
        out.push_str(std::str::from_utf8(&self.buf[..self.len]).unwrap());
    }
}

/// Appends one trace event to `out` as an NDJSON line (newline included).
pub fn write_trace_line(out: &mut String, e: &TraceEvent) {
    let mut l = LineBuf::new();
    l.lit("{\"t\":\"trace\",\"cycle\":");
    l.num(e.cycle);
    l.lit(",\"group\":");
    l.num(e.group as u64);
    l.lit(",\"flow\":");
    l.opt(e.flow.map(u64::from));
    l.lit(",\"thread\":");
    l.opt(e.thread.map(|t| t as u64));
    l.lit(",\"kind\":\"");
    l.lit(e.kind.as_str());
    l.lit("\"}\n");
    l.flush(out);
}

/// Encodes one trace event as an NDJSON line (newline included).
pub fn trace_line(e: &TraceEvent) -> String {
    let mut out = String::new();
    write_trace_line(&mut out, e);
    out
}

/// Shortest run worth a `trun`/`brun` line: below this, plain `trace`
/// lines are no longer on the wire than the run encoding.
const MIN_RUN: usize = 3;

/// Matches the longest prefix of `evs` that a single `trun` line can
/// carry: constant group/flow/kind, threads ascending by one, and the
/// issue cadence's cycle shape — some events on the first cycle, then a
/// constant number per following cycle (the last cycle may be partial).
/// Returns `(count, first, width)`, or `None` when the prefix is shorter
/// than [`MIN_RUN`].
fn unit_run(evs: &[&TraceEvent]) -> Option<(usize, usize, usize)> {
    let e0 = evs[0];
    let (flow, t0) = (e0.flow?, e0.thread?);
    let mut first: Option<usize> = None;
    let mut width: Option<usize> = None;
    let mut cycle = e0.cycle;
    let mut in_cycle = 1usize;
    let mut n = 1usize;
    for e in &evs[1..] {
        if e.group != e0.group
            || e.kind != e0.kind
            || e.flow != Some(flow)
            || e.thread != Some(t0 + n)
        {
            break;
        }
        if e.cycle == cycle {
            // A middle/final cycle never holds more than `width` events.
            if width == Some(in_cycle) {
                break;
            }
            in_cycle += 1;
        } else if e.cycle == cycle + 1 {
            match (first, width) {
                (None, _) => first = Some(in_cycle),
                (Some(_), None) => width = Some(in_cycle),
                (Some(_), Some(w)) if in_cycle == w => {}
                // A short middle cycle can only be the run's last; end
                // the run there and let the next line start fresh.
                _ => break,
            }
            cycle = e.cycle;
            in_cycle = 1;
        } else {
            break;
        }
        n += 1;
    }
    if n < MIN_RUN {
        return None;
    }
    let first = first.unwrap_or(n);
    let width = width.unwrap_or_else(|| (n - first).max(1));
    Some((n, first, width))
}

/// Matches the longest prefix of `evs` that a single `brun` line can
/// carry: flow-less, thread-less events (drain bubbles) with constant
/// group/kind, one cycle apart. Returns the count, or `None` when the
/// prefix is shorter than [`MIN_RUN`].
fn gap_run(evs: &[&TraceEvent]) -> Option<usize> {
    let e0 = evs[0];
    if e0.flow.is_some() || e0.thread.is_some() {
        return None;
    }
    let mut n = 1usize;
    for e in &evs[1..] {
        if e.group != e0.group
            || e.kind != e0.kind
            || e.flow.is_some()
            || e.thread.is_some()
            || e.cycle != e0.cycle + n as u64
        {
            break;
        }
        n += 1;
    }
    (n >= MIN_RUN).then_some(n)
}

fn write_trace_run_line(
    out: &mut String,
    e: &TraceEvent,
    count: usize,
    first: usize,
    width: usize,
) {
    let mut l = LineBuf::new();
    l.lit("{\"t\":\"trun\",\"cycle\":");
    l.num(e.cycle);
    l.lit(",\"group\":");
    l.num(e.group as u64);
    l.lit(",\"flow\":");
    l.num(u64::from(e.flow.expect("trun events carry a flow")));
    l.lit(",\"thread0\":");
    l.num(e.thread.expect("trun events carry a thread") as u64);
    l.lit(",\"count\":");
    l.num(count as u64);
    l.lit(",\"first\":");
    l.num(first as u64);
    l.lit(",\"width\":");
    l.num(width as u64);
    l.lit(",\"kind\":\"");
    l.lit(e.kind.as_str());
    l.lit("\"}\n");
    l.flush(out);
}

fn write_gap_run_line(out: &mut String, e: &TraceEvent, count: usize) {
    let mut l = LineBuf::new();
    l.lit("{\"t\":\"brun\",\"cycle\":");
    l.num(e.cycle);
    l.lit(",\"group\":");
    l.num(e.group as u64);
    l.lit(",\"count\":");
    l.num(count as u64);
    l.lit(",\"kind\":\"");
    l.lit(e.kind.as_str());
    l.lit("\"}\n");
    l.flush(out);
}

/// Encodes a batch of trace events, run-compressing where the shapes
/// allow and falling back to per-event `trace` lines elsewhere. The
/// emitted lines parse back to exactly `evs`.
fn write_trace_items<'a>(out: &mut String, items: impl Iterator<Item = &'a TraceEvent>) {
    let evs: Vec<&TraceEvent> = items.collect();
    let mut i = 0;
    while i < evs.len() {
        if let Some((n, first, width)) = unit_run(&evs[i..]) {
            write_trace_run_line(out, evs[i], n, first, width);
            i += n;
        } else if let Some(n) = gap_run(&evs[i..]) {
            write_gap_run_line(out, evs[i], n);
            i += n;
        } else {
            write_trace_line(out, evs[i]);
            i += 1;
        }
    }
}

impl LineBuf {
    #[inline]
    fn flow_field(&mut self, flow: u32) {
        self.lit(",\"flow\":");
        self.num(u64::from(flow));
    }
}

/// Appends one timed flow event to `out` as an NDJSON line (newline
/// included).
pub fn write_flow_line(out: &mut String, e: &TimedEvent) {
    let mut l = LineBuf::new();
    l.lit("{\"t\":\"flow\",\"step\":");
    l.num(e.step);
    l.lit(",\"cycle\":");
    l.num(e.cycle);
    l.lit(",\"event\":\"");
    l.lit(e.event.name());
    l.lit("\"");
    match e.event {
        FlowEvent::FlowSpawned {
            flow,
            parent,
            thickness,
        } => {
            l.flow_field(flow);
            l.lit(",\"parent\":");
            l.opt(parent.map(u64::from));
            l.lit(",\"thickness\":");
            l.num(thickness as u64);
        }
        FlowEvent::Split { flow, arms } => {
            l.flow_field(flow);
            l.lit(",\"arms\":");
            l.num(arms as u64);
        }
        FlowEvent::Join { flow, parent } => {
            l.flow_field(flow);
            l.lit(",\"parent\":");
            l.opt(parent.map(u64::from));
        }
        FlowEvent::ModeSwitch { flow, mode } => {
            l.flow_field(flow);
            l.lit(",\"mode\":\"");
            l.lit(mode.as_str());
            l.lit("\"");
        }
        FlowEvent::ThicknessChange { flow, from, to } => {
            l.flow_field(flow);
            l.lit(",\"from\":");
            l.num(from as u64);
            l.lit(",\"to\":");
            l.num(to as u64);
        }
        FlowEvent::BufferReload { flow, group, cost } => {
            l.flow_field(flow);
            l.lit(",\"group\":");
            l.num(group as u64);
            l.lit(",\"cost\":");
            l.num(cost);
        }
        FlowEvent::WaitBegin { flow, pending } => {
            l.flow_field(flow);
            l.lit(",\"pending\":");
            l.num(pending as u64);
        }
        FlowEvent::WaitEnd { flow }
        | FlowEvent::FlowHalted { flow }
        | FlowEvent::Fetch { flow } => {
            l.flow_field(flow);
        }
        FlowEvent::Spill { flow, group, lanes } => {
            l.flow_field(flow);
            l.lit(",\"group\":");
            l.num(group as u64);
            l.lit(",\"lanes\":");
            l.num(lanes as u64);
        }
        FlowEvent::StepEnd { step, cycle } => {
            l.lit(",\"end_step\":");
            l.num(step);
            l.lit(",\"end_cycle\":");
            l.num(cycle);
        }
    }
    l.lit("}\n");
    l.flush(out);
}

/// Encodes one timed flow event as an NDJSON line (newline included).
pub fn flow_line(e: &TimedEvent) -> String {
    let mut out = String::new();
    write_flow_line(&mut out, e);
    out
}

/// Appends a truncation notice to `out`: `missed` events of `stream`
/// (`"trace"`/`"flow"`) were evicted before the subscriber drained them.
pub fn write_drop_line(out: &mut String, stream: &str, missed: u64) {
    let mut l = LineBuf::new();
    l.lit("{\"t\":\"drop\",\"stream\":\"");
    l.lit(stream);
    l.lit("\",\"missed\":");
    l.num(missed);
    l.lit("}\n");
    l.flush(out);
}

/// Encodes a truncation notice: `missed` events of `stream`
/// (`"trace"`/`"flow"`) were evicted before the subscriber drained them.
pub fn drop_line(stream: &str, missed: u64) -> String {
    let mut out = String::new();
    write_drop_line(&mut out, stream, missed);
    out
}

/// Appends everything new in both buffers since `cursor` to `out` as
/// NDJSON lines (trace events first, then flow events, each stream in
/// order), advancing the cursor. Evictions the subscriber missed surface
/// as `drop` lines. This is the pump of `repro --stream`, called every
/// [`DRAIN_INTERVAL_STEPS`] steps (plus once after the run); events are
/// walked by reference ([`Trace::view_from`]) and encoded straight into
/// `out`, so the pump allocates nothing beyond `out`'s own growth.
pub fn drain_ndjson(trace: &Trace, obs: &ObsSink, cursor: &mut StreamCursor, out: &mut String) {
    let (items, next, missed) = trace.view_from(cursor.trace);
    if missed > 0 {
        write_drop_line(out, "trace", missed);
    }
    write_trace_items(out, items);
    cursor.trace = next;

    let (items, next, missed) = obs.view_from(cursor.events);
    if missed > 0 {
        write_drop_line(out, "flow", missed);
    }
    for e in items {
        write_flow_line(out, e);
    }
    cursor.events = next;
}

/// Both event streams reassembled from an NDJSON document, plus the drop
/// totals its `drop` lines reported.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamReassembly {
    /// Trace events, in stream order.
    pub trace: Vec<TraceEvent>,
    /// Flow events, in stream order.
    pub events: Vec<TimedEvent>,
    /// Trace events the stream declared dropped.
    pub trace_dropped: u64,
    /// Flow events the stream declared dropped.
    pub events_dropped: u64,
}

/// Extracts the raw text of `"key":<value>` from one NDJSON line.
/// Values in this schema are numbers, `null`, or bare identifier strings
/// (event/kind/mode names — never escaped), so a scan suffices.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        let end = rest.find([',', '}'])?;
        Some(&rest[..end])
    }
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("missing or bad \"{key}\" in: {line}"))
}

fn usize_field(line: &str, key: &str) -> Result<usize, String> {
    raw_field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("missing or bad \"{key}\" in: {line}"))
}

fn opt_u32_field(line: &str, key: &str) -> Result<Option<u32>, String> {
    match raw_field(line, key) {
        None => Err(format!("missing \"{key}\" in: {line}")),
        Some("null") => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad \"{key}\" in: {line}")),
    }
}

fn str_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    raw_field(line, key).ok_or_else(|| format!("missing \"{key}\" in: {line}"))
}

fn parse_flow_event(line: &str) -> Result<FlowEvent, String> {
    let name = str_field(line, "event")?;
    let flow = |key: &str| opt_u32_field(line, key);
    let req_flow = || flow("flow")?.ok_or_else(|| format!("null \"flow\" in: {line}"));
    Ok(match name {
        "flow_spawned" => FlowEvent::FlowSpawned {
            flow: req_flow()?,
            parent: flow("parent")?,
            thickness: usize_field(line, "thickness")?,
        },
        "split" => FlowEvent::Split {
            flow: req_flow()?,
            arms: usize_field(line, "arms")?,
        },
        "join" => FlowEvent::Join {
            flow: req_flow()?,
            parent: flow("parent")?,
        },
        "mode_switch" => FlowEvent::ModeSwitch {
            flow: req_flow()?,
            mode: Mode::from_name(str_field(line, "mode")?)
                .ok_or_else(|| format!("bad \"mode\" in: {line}"))?,
        },
        "thickness_change" => FlowEvent::ThicknessChange {
            flow: req_flow()?,
            from: usize_field(line, "from")?,
            to: usize_field(line, "to")?,
        },
        "buffer_reload" => FlowEvent::BufferReload {
            flow: req_flow()?,
            group: usize_field(line, "group")?,
            cost: u64_field(line, "cost")?,
        },
        "wait_begin" => FlowEvent::WaitBegin {
            flow: req_flow()?,
            pending: usize_field(line, "pending")?,
        },
        "wait_end" => FlowEvent::WaitEnd { flow: req_flow()? },
        "flow_halted" => FlowEvent::FlowHalted { flow: req_flow()? },
        "fetch" => FlowEvent::Fetch { flow: req_flow()? },
        "spill" => FlowEvent::Spill {
            flow: req_flow()?,
            group: usize_field(line, "group")?,
            lanes: usize_field(line, "lanes")?,
        },
        "step_end" => FlowEvent::StepEnd {
            step: u64_field(line, "end_step")?,
            cycle: u64_field(line, "end_cycle")?,
        },
        other => return Err(format!("unknown event \"{other}\" in: {line}")),
    })
}

/// Parses a `tcf-obs-stream/v1` NDJSON document back into its event
/// streams. The first non-empty line must be the schema header; unknown
/// line types or malformed fields are errors (the writer and reader are
/// the same schema version by construction).
pub fn parse_stream(s: &str) -> Result<StreamReassembly, String> {
    let mut lines = s.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some(header) if raw_field(header, "schema") == Some(STREAM_SCHEMA) => {}
        Some(header) => return Err(format!("bad stream header: {header}")),
        None => return Err("empty stream".to_string()),
    }
    let mut out = StreamReassembly::default();
    for line in lines {
        match str_field(line, "t")? {
            "trace" => out.trace.push(TraceEvent {
                cycle: u64_field(line, "cycle")?,
                group: usize_field(line, "group")?,
                flow: opt_u32_field(line, "flow")?,
                thread: opt_u32_field(line, "thread")?.map(|t| t as usize),
                kind: UnitKind::from_name(str_field(line, "kind")?)
                    .ok_or_else(|| format!("bad \"kind\" in: {line}"))?,
            }),
            "trun" => {
                let cycle = u64_field(line, "cycle")?;
                let group = usize_field(line, "group")?;
                let flow = opt_u32_field(line, "flow")?
                    .ok_or_else(|| format!("null \"flow\" in: {line}"))?;
                let thread0 = usize_field(line, "thread0")?;
                let count = usize_field(line, "count")?;
                let first = usize_field(line, "first")?;
                let width = usize_field(line, "width")?;
                let kind = UnitKind::from_name(str_field(line, "kind")?)
                    .ok_or_else(|| format!("bad \"kind\" in: {line}"))?;
                if width == 0 {
                    return Err(format!("zero \"width\" in: {line}"));
                }
                for i in 0..count {
                    let c = if i < first {
                        cycle
                    } else {
                        cycle + 1 + ((i - first) / width) as u64
                    };
                    out.trace.push(TraceEvent {
                        cycle: c,
                        group,
                        flow: Some(flow),
                        thread: Some(thread0 + i),
                        kind,
                    });
                }
            }
            "brun" => {
                let cycle = u64_field(line, "cycle")?;
                let group = usize_field(line, "group")?;
                let count = usize_field(line, "count")?;
                let kind = UnitKind::from_name(str_field(line, "kind")?)
                    .ok_or_else(|| format!("bad \"kind\" in: {line}"))?;
                for i in 0..count {
                    out.trace.push(TraceEvent {
                        cycle: cycle + i as u64,
                        group,
                        flow: None,
                        thread: None,
                        kind,
                    });
                }
            }
            "flow" => out.events.push(TimedEvent {
                step: u64_field(line, "step")?,
                cycle: u64_field(line, "cycle")?,
                event: parse_flow_event(line)?,
            }),
            "drop" => {
                let missed = u64_field(line, "missed")?;
                match str_field(line, "stream")? {
                    "trace" => out.trace_dropped += missed,
                    "flow" => out.events_dropped += missed,
                    other => return Err(format!("unknown drop stream \"{other}\" in: {line}")),
                }
            }
            other => return Err(format!("unknown line type \"{other}\" in: {line}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::trace::FlowTag;

    fn all_flow_events() -> Vec<FlowEvent> {
        vec![
            FlowEvent::FlowSpawned {
                flow: 1,
                parent: None,
                thickness: 16,
            },
            FlowEvent::FlowSpawned {
                flow: 2,
                parent: Some(1),
                thickness: 8,
            },
            FlowEvent::Split { flow: 1, arms: 2 },
            FlowEvent::Join {
                flow: 2,
                parent: Some(1),
            },
            FlowEvent::ModeSwitch {
                flow: 2,
                mode: Mode::Numa,
            },
            FlowEvent::ThicknessChange {
                flow: 1,
                from: 16,
                to: 4,
            },
            FlowEvent::BufferReload {
                flow: 1,
                group: 3,
                cost: 9,
            },
            FlowEvent::WaitBegin {
                flow: 1,
                pending: 2,
            },
            FlowEvent::WaitEnd { flow: 1 },
            FlowEvent::FlowHalted { flow: 2 },
            FlowEvent::Fetch { flow: 1 },
            FlowEvent::Spill {
                flow: 1,
                group: 0,
                lanes: 7,
            },
            FlowEvent::StepEnd { step: 3, cycle: 40 },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for (i, event) in all_flow_events().into_iter().enumerate() {
            let ev = TimedEvent {
                step: i as u64,
                cycle: 2 * i as u64,
                event,
            };
            let line = flow_line(&ev);
            validate_json(line.trim()).expect("line is valid JSON");
            let doc = format!("{}{}", header_line(), line);
            let re = parse_stream(&doc).expect("parses");
            assert_eq!(re.events, vec![ev], "event {i} diverged");
        }
    }

    #[test]
    fn trace_events_round_trip() {
        let evs = vec![
            TraceEvent {
                cycle: 0,
                group: 0,
                flow: Some(1 as FlowTag),
                thread: Some(3),
                kind: UnitKind::Compute,
            },
            TraceEvent {
                cycle: 1,
                group: 2,
                flow: None,
                thread: None,
                kind: UnitKind::Bubble,
            },
        ];
        let mut doc = header_line();
        for e in &evs {
            let line = trace_line(e);
            validate_json(line.trim()).expect("line is valid JSON");
            doc.push_str(&line);
        }
        let re = parse_stream(&doc).expect("parses");
        assert_eq!(re.trace, evs);
        assert!(re.events.is_empty());
    }

    #[test]
    fn incremental_drains_match_batch_export() {
        let mut trace = Trace::recording();
        let mut obs = ObsSink::recording();
        let mut cursor = StreamCursor::default();
        let mut doc = header_line();
        for step in 0..4u64 {
            for c in 0..3u64 {
                trace.push(TraceEvent {
                    cycle: step * 3 + c,
                    group: 0,
                    flow: Some(1),
                    thread: None,
                    kind: UnitKind::Compute,
                });
            }
            obs.emit(
                step + 1,
                (step + 1) * 3,
                FlowEvent::StepEnd {
                    step: step + 1,
                    cycle: (step + 1) * 3,
                },
            );
            drain_ndjson(&trace, &obs, &mut cursor, &mut doc);
        }
        let re = parse_stream(&doc).expect("parses");
        assert_eq!(re.trace, trace.events());
        assert_eq!(re.events, obs.events());
        assert_eq!(re.trace_dropped + re.events_dropped, 0);
    }

    #[test]
    fn drops_surface_as_drop_lines() {
        let trace = Trace::recording();
        let mut obs = ObsSink::ring(2);
        let mut cursor = StreamCursor::default();
        for i in 0..7 {
            obs.emit(1, i, FlowEvent::Fetch { flow: 1 });
        }
        let mut doc = header_line();
        drain_ndjson(&trace, &obs, &mut cursor, &mut doc);
        let re = parse_stream(&doc).expect("parses");
        assert_eq!(re.events_dropped, 5);
        assert_eq!(re.events.len(), 2);
        assert_eq!(cursor.events, obs.next_seq());
    }

    /// Encodes `evs` through the run-compressing batch writer and parses
    /// the document back, asserting exact reconstruction.
    fn batch_round_trips(evs: &[TraceEvent]) -> String {
        let mut doc = header_line();
        write_trace_items(&mut doc, evs.iter());
        for line in doc.lines().skip(1) {
            validate_json(line).expect("line is valid JSON");
        }
        let re = parse_stream(&doc).expect("parses");
        assert_eq!(re.trace, evs, "run compression diverged");
        doc
    }

    /// The per-unit expansion of a compute run, as `issue_one` produces
    /// it: `phase` units fit on the first cycle, then `width` per cycle.
    fn cadence(
        cycle0: u64,
        flow: u32,
        count: usize,
        phase: usize,
        width: usize,
    ) -> Vec<TraceEvent> {
        (0..count)
            .map(|i| TraceEvent {
                cycle: if i < phase {
                    cycle0
                } else {
                    cycle0 + 1 + ((i - phase) / width) as u64
                },
                group: 1,
                flow: Some(flow),
                thread: Some(7 + i),
                kind: UnitKind::Compute,
            })
            .collect()
    }

    #[test]
    fn cadence_runs_compress_and_round_trip() {
        for (count, phase, width) in [
            (256, 2, 4),
            (5, 5, 1),  // single cycle
            (9, 2, 7),  // two cycles, second partial
            (3, 1, 1),  // minimum run length
            (17, 4, 4), // phase == width, partial tail
        ] {
            let evs = cadence(10, 3, count, phase, width);
            let doc = batch_round_trips(&evs);
            assert_eq!(
                doc.lines().count(),
                2,
                "{count}/{phase}/{width} should be one trun line, got:\n{doc}"
            );
        }
    }

    #[test]
    fn bubble_runs_compress_and_round_trip() {
        let evs: Vec<TraceEvent> = (0..12)
            .map(|i| TraceEvent {
                cycle: 40 + i,
                group: 2,
                flow: None,
                thread: None,
                kind: UnitKind::Bubble,
            })
            .collect();
        let doc = batch_round_trips(&evs);
        assert_eq!(doc.lines().count(), 2, "one brun line:\n{doc}");
    }

    #[test]
    fn irregular_sequences_fall_back_to_plain_lines() {
        // Thread gaps, flow changes, cycle jumps, and sub-MIN_RUN runs:
        // everything must still reconstruct exactly.
        let mut evs = cadence(0, 1, 2, 1, 1); // too short for a run
        evs.push(TraceEvent {
            cycle: 9,
            group: 1,
            flow: Some(1),
            thread: Some(100), // thread gap
            kind: UnitKind::Compute,
        });
        evs.extend(cadence(9, 2, 6, 3, 3)); // flow switch mid-stream
        evs.push(TraceEvent {
            cycle: 30, // cycle jump > 1
            group: 1,
            flow: Some(2),
            thread: Some(13),
            kind: UnitKind::MemLocal,
        });
        evs.push(TraceEvent {
            cycle: 31,
            group: 1,
            flow: None,
            thread: None,
            kind: UnitKind::Bubble, // lone bubble
        });
        batch_round_trips(&evs);
    }

    #[test]
    fn adjacent_runs_split_at_shape_breaks() {
        // Two back-to-back cadence runs of the same flow: the second
        // starts a new thread base, so the writer must end the first run
        // exactly at the boundary.
        let mut evs = cadence(0, 1, 8, 4, 4);
        evs.extend(cadence(2, 1, 8, 4, 4));
        batch_round_trips(&evs);
    }

    #[test]
    fn line_buf_digits_match_display_at_the_edges() {
        for v in [0u64, 1, 9, 10, 99, 100, 12345, u64::MAX - 1, u64::MAX] {
            let mut l = LineBuf::new();
            l.num(v);
            let mut s = String::new();
            l.flush(&mut s);
            assert_eq!(s, v.to_string());
        }
    }

    #[test]
    fn parser_rejects_foreign_documents() {
        assert!(parse_stream("").is_err());
        assert!(parse_stream("{\"schema\":\"something-else/v9\"}\n").is_err());
        let doc = format!("{}{}", header_line(), "{\"t\":\"mystery\"}\n");
        assert!(parse_stream(&doc).is_err());
    }
}
