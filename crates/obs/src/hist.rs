//! Allocation-free log2-bucket latency histograms.
//!
//! Latencies in the simulator (shared-memory round trips, network queueing,
//! TCF-buffer reloads) span several orders of magnitude, so a histogram with
//! exponentially sized buckets captures the distribution in a fixed, small
//! footprint: one `[u64; 65]` array — bucket 0 for the value 0, bucket `k`
//! for values in `[2^(k-1), 2^k)`. Recording is a handful of integer ops and
//! never allocates, so it is safe on the simulator's hot paths.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per bit position of `u64`.
pub const BUCKETS: usize = 65;

/// Fixed-size log2-bucket histogram of `u64` samples.
///
/// `Copy` on purpose: the counter structs that embed it (`MachineStats`,
/// `NetStats`, …) are themselves plain-old-data snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros(v)`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest value that falls into bucket `k` (inclusive).
fn bucket_upper(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`0.0 ..= 1.0`), clamped to the observed maximum. Returns 0 when
    /// empty. Resolution is one log2 bucket — adequate for order-of-
    /// magnitude latency reporting.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil so p50 of 2 samples is
        // the 1st.
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(k).min(self.max);
            }
        }
        self.max
    }

    /// Median sample (bucket-resolution); see [`percentile`](Self::percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile sample (bucket-resolution).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// Records the non-decreasing run `v_k = base + k − ⌊(c + k)/width⌋`
    /// for `k` in `[k_from, k_to)` — the closed-form shape of per-message
    /// latencies through a rate-1 pipeline fed `width` messages per cycle,
    /// where `c < width` is the in-cycle phase of message 0. (`width == 1`
    /// gives the constant run `v_k = base`.) Exactly equivalent to
    /// `record`-ing every `v_k` individually, at a cost of one binary
    /// search per touched log2 bucket instead of one update per sample.
    ///
    /// Returns `(sum, last)`: the total of the recorded values and the
    /// final (largest) one, for callers that mirror the histogram into
    /// side counters.
    pub fn record_ramp(
        &mut self,
        base: u64,
        c: u64,
        width: u64,
        k_from: u64,
        k_to: u64,
    ) -> (u64, u64) {
        assert!(width >= 1 && c < width, "cadence phase must be below width");
        if k_from >= k_to {
            return (0, 0);
        }
        // `k ≥ ⌊(c + k)/width⌋` for every `c < width`, so `v` never
        // underflows and is non-decreasing (increments of 0 or 1).
        let v = |k: u64| base + (k - (c + k) / width);
        let n = k_to - k_from;
        self.count += n;
        // Σ v_k = n·base + Σ k − Σ ⌊(c+k)/width⌋ over the k range; the
        // divisor sum telescopes through F(M) = Σ_{m<M} ⌊m/width⌋.
        let f = |m: u64| -> u128 {
            let q = (m / width) as u128;
            let r = (m % width) as u128;
            (width as u128) * q * q.saturating_sub(1) / 2 + r * q
        };
        let sum_k = (k_from as u128 + k_to as u128 - 1) * n as u128 / 2;
        let total = n as u128 * base as u128 + sum_k - (f(c + k_to) - f(c + k_from));
        debug_assert!(total <= u64::MAX as u128);
        let total = total as u64;
        self.sum = self.sum.saturating_add(total);
        let last = v(k_to - 1);
        if last > self.max {
            self.max = last;
        }
        // `v` is non-decreasing, so the samples landing in one bucket form
        // a k-interval; split the range at bucket upper bounds.
        let mut k = k_from;
        while k < k_to {
            let b = bucket_of(v(k));
            let hi = bucket_upper(b);
            // First k' with v(k') > hi (v is monotone).
            let (mut lo_s, mut hi_s) = (k + 1, k_to);
            while lo_s < hi_s {
                let mid = lo_s + (hi_s - lo_s) / 2;
                if v(mid) > hi {
                    hi_s = mid;
                } else {
                    lo_s = mid + 1;
                }
            }
            self.buckets[b] += lo_s - k;
            k = lo_s;
        }
        (total, last)
    }

    /// Adds all of `other`'s samples into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(range_lo, range_hi, count)`, ascending.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| {
                let lo = if k == 0 { 0 } else { 1u64 << (k - 1) };
                (lo, bucket_upper(k), n)
            })
            .collect()
    }

    /// Multi-line ASCII rendering (one row per non-empty bucket with a
    /// proportional bar), used by `tdbg`'s `hist` command. Empty
    /// histograms render as `"  (no samples)"`.
    pub fn render_ascii(&self) -> String {
        if self.count == 0 {
            return "  (no samples)".to_string();
        }
        let rows = self.nonempty_buckets();
        let widest = rows.iter().map(|&(_, _, n)| n).max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, (lo, hi, n)) in rows.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            let bar_len = ((n * 40) / widest).max(1) as usize;
            let bar = "#".repeat(bar_len);
            out.push_str(&format!("  [{lo:>8} ..= {hi:>8}] {n:>8} |{bar}"));
        }
        out.push_str(&format!(
            "\n  count {}  mean {:.1}  p50 {}  p95 {}  max {}",
            self.count,
            self.mean(),
            self.p50(),
            self.p95(),
            self.max
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_bucket_resolution_and_clamped() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(4); // bucket 3, upper bound 7
        }
        h.record(1000);
        // p50 lands in bucket 3; upper bound 7 but clamped to max only if
        // smaller — here 7 < 1000 so stays 7.
        assert_eq!(h.p50(), 7);
        // p95 rank 95 still within the 99 fours.
        assert_eq!(h.p95(), 7);
        // p100 reaches the outlier; clamped to observed max.
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.render_ascii(), "  (no samples)");
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(3);
        b.record(300);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 303);
        assert_eq!(a.max(), 300);
        assert_eq!(a.nonempty_buckets().len(), 3);
    }

    #[test]
    fn single_sample_percentile_is_exactish() {
        let mut h = LatencyHistogram::new();
        h.record(6); // bucket 3 [4,7]; clamped to max 6
        assert_eq!(h.p50(), 6);
        assert_eq!(h.p95(), 6);
    }

    #[test]
    fn record_ramp_matches_per_sample_record() {
        // Sweep cadence shapes (width, phase), bases around bucket
        // boundaries, and ranges that straddle several buckets; the bulk
        // path must be bit-identical to the per-sample loop.
        for &width in &[1u64, 2, 3, 4, 7, 16] {
            for c in 0..width {
                for &base in &[0u64, 1, 3, 7, 100, (1 << 20) - 2] {
                    for &(k_from, k_to) in &[(0u64, 1u64), (0, 5), (1, 97), (3, 3), (0, 1000)] {
                        let mut bulk = LatencyHistogram::new();
                        bulk.record(base + 12345); // pre-existing state
                        let mut loopy = bulk;
                        let (sum, last) = bulk.record_ramp(base, c, width, k_from, k_to);
                        let mut expect_sum = 0u64;
                        let mut expect_last = 0u64;
                        for k in k_from..k_to {
                            let v = base + k - (c + k) / width;
                            loopy.record(v);
                            expect_sum += v;
                            expect_last = v;
                        }
                        assert_eq!(
                            bulk, loopy,
                            "width {width} c {c} base {base} range {k_from}..{k_to}"
                        );
                        assert_eq!((sum, last), (expect_sum, expect_last));
                    }
                }
            }
        }
    }

    #[test]
    fn ascii_render_mentions_counts() {
        let mut h = LatencyHistogram::new();
        h.record(2);
        h.record(2);
        h.record(9);
        let s = h.render_ascii();
        assert!(s.contains("count 3"));
        assert!(s.contains('#'));
    }
}
