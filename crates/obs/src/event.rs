//! Flow-lifecycle events.
//!
//! Where [`crate::trace`] records *what each pipeline slot did each cycle*,
//! this module records *what happened to flows*: the thick-control-flow
//! lifecycle of the extended PRAM-NUMA model — spawning, splitting and
//! joining, switching between PRAM and NUMA execution modes, changing
//! thickness, reloading the TCF buffer, and blocking on joins. The runtimes
//! emit these through an [`crate::ObsSink`]; exporters reconstruct per-flow
//! timelines from the stream.

use serde::{Deserialize, Serialize};

use crate::trace::FlowTag;

/// Execution mode of a flow in the extended PRAM-NUMA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Synchronous, latency-hiding PRAM-style execution.
    Pram,
    /// Bunched NUMA-mode execution on local memory.
    Numa,
}

impl Mode {
    /// Stable lowercase name, shared by all exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Pram => "pram",
            Mode::Numa => "numa",
        }
    }

    /// Inverse of [`as_str`](Self::as_str), for stream re-readers.
    pub fn from_name(name: &str) -> Option<Mode> {
        match name {
            "pram" => Some(Mode::Pram),
            "numa" => Some(Mode::Numa),
            _ => None,
        }
    }
}

/// A flow-lifecycle event, without timing (see [`TimedEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowEvent {
    /// A flow came into existence (initial flows, `spawn`, or split arms).
    FlowSpawned {
        /// The new flow.
        flow: FlowTag,
        /// Parent flow, if any (`None` for initial flows).
        parent: Option<FlowTag>,
        /// Thickness at creation.
        thickness: usize,
    },
    /// A flow split into `arms` child flows and began waiting for them.
    Split {
        /// The splitting (parent) flow.
        flow: FlowTag,
        /// Number of child arms created.
        arms: usize,
    },
    /// A child flow joined back into its parent.
    Join {
        /// The joining (child) flow.
        flow: FlowTag,
        /// The parent being joined, if known.
        parent: Option<FlowTag>,
    },
    /// A flow switched execution mode (PRAM ↔ NUMA).
    ModeSwitch {
        /// The switching flow.
        flow: FlowTag,
        /// Mode it switched *to*.
        mode: Mode,
    },
    /// A flow's thickness changed (e.g. `setthick`).
    ThicknessChange {
        /// The resized flow.
        flow: FlowTag,
        /// Thickness before.
        from: usize,
        /// Thickness after.
        to: usize,
    },
    /// Activating a flow missed in the TCF buffer and paid a reload.
    BufferReload {
        /// The flow being activated.
        flow: FlowTag,
        /// Processor/group whose buffer reloaded.
        group: usize,
        /// Overhead cycles charged for the reload.
        cost: u64,
    },
    /// A flow began waiting (join barrier / spawn completion).
    WaitBegin {
        /// The waiting flow.
        flow: FlowTag,
        /// Children still outstanding when the wait began.
        pending: usize,
    },
    /// A waiting flow was woken (all children accounted for).
    WaitEnd {
        /// The woken flow.
        flow: FlowTag,
    },
    /// A flow halted for good.
    FlowHalted {
        /// The halted flow.
        flow: FlowTag,
    },
    /// A flow performed an instruction fetch.
    Fetch {
        /// The fetching flow.
        flow: FlowTag,
    },
    /// A register-cache spill forced extra local-memory references — one
    /// per lane of the spilling fragment, reported as a single
    /// run-compressed event so a `T`-thick spilling step emits O(1)
    /// events, not O(T).
    Spill {
        /// The spilling flow.
        flow: FlowTag,
        /// Processor/group that issued the spill references.
        group: usize,
        /// Lanes (= extra local references) covered by this event.
        lanes: usize,
    },
    /// A machine step completed (used for per-step metric snapshots).
    StepEnd {
        /// 1-based step number just completed.
        step: u64,
        /// Machine clock (cycles) after the step.
        cycle: u64,
    },
}

impl FlowEvent {
    /// Stable lowercase event name, shared by all exporters.
    pub fn name(&self) -> &'static str {
        match self {
            FlowEvent::FlowSpawned { .. } => "flow_spawned",
            FlowEvent::Split { .. } => "split",
            FlowEvent::Join { .. } => "join",
            FlowEvent::ModeSwitch { .. } => "mode_switch",
            FlowEvent::ThicknessChange { .. } => "thickness_change",
            FlowEvent::BufferReload { .. } => "buffer_reload",
            FlowEvent::WaitBegin { .. } => "wait_begin",
            FlowEvent::WaitEnd { .. } => "wait_end",
            FlowEvent::FlowHalted { .. } => "flow_halted",
            FlowEvent::Fetch { .. } => "fetch",
            FlowEvent::Spill { .. } => "spill",
            FlowEvent::StepEnd { .. } => "step_end",
        }
    }

    /// The flow the event concerns, when it concerns one.
    pub fn flow(&self) -> Option<FlowTag> {
        match *self {
            FlowEvent::FlowSpawned { flow, .. }
            | FlowEvent::Split { flow, .. }
            | FlowEvent::Join { flow, .. }
            | FlowEvent::ModeSwitch { flow, .. }
            | FlowEvent::ThicknessChange { flow, .. }
            | FlowEvent::BufferReload { flow, .. }
            | FlowEvent::WaitBegin { flow, .. }
            | FlowEvent::WaitEnd { flow }
            | FlowEvent::FlowHalted { flow }
            | FlowEvent::Fetch { flow }
            | FlowEvent::Spill { flow, .. } => Some(flow),
            FlowEvent::StepEnd { .. } => None,
        }
    }
}

/// A [`FlowEvent`] stamped with the step and cycle it occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Machine step during which the event occurred (1-based; 0 before the
    /// first step completes, e.g. initial-flow creation).
    pub step: u64,
    /// Machine clock (cycles) when the event occurred.
    pub cycle: u64,
    /// The event itself.
    pub event: FlowEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_lowercase() {
        let samples = [
            FlowEvent::FlowSpawned {
                flow: 1,
                parent: None,
                thickness: 4,
            },
            FlowEvent::Split { flow: 1, arms: 2 },
            FlowEvent::Join {
                flow: 2,
                parent: Some(1),
            },
            FlowEvent::ModeSwitch {
                flow: 1,
                mode: Mode::Numa,
            },
            FlowEvent::StepEnd { step: 1, cycle: 10 },
        ];
        let names: Vec<_> = samples.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec!["flow_spawned", "split", "join", "mode_switch", "step_end"]
        );
        for n in names {
            assert_eq!(n, n.to_lowercase());
        }
    }

    #[test]
    fn flow_accessor() {
        assert_eq!(FlowEvent::WaitEnd { flow: 7 }.flow(), Some(7));
        assert_eq!(FlowEvent::StepEnd { step: 1, cycle: 1 }.flow(), None);
    }

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Pram.as_str(), "pram");
        assert_eq!(Mode::Numa.as_str(), "numa");
    }
}
