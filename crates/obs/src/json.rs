//! Stable-schema JSON metrics dump, plus a tiny JSON validator.
//!
//! [`metrics_json`] serializes a [`MetricsRegistry`] under the
//! `tcf-metrics/v1` schema:
//!
//! ```json
//! {
//!   "schema": "tcf-metrics/v1",
//!   "counters":   { "machine.compute_ops": 128, ... },
//!   "gauges":     { "machine.utilization": 0.87, ... },
//!   "histograms": { "net.queue": { "count": 40, "sum": 90, "max": 9,
//!                                   "mean": 2.25, "p50": 3, "p95": 7,
//!                                   "buckets": [[0,0,4],[1,1,6], ...] } },
//!   "steps": [ { "step": 1, "cycle": 12, "values": { ... } }, ... ]
//! }
//! ```
//!
//! Consumers may rely on these key names; additions will be
//! backwards-compatible within `v1`. Values are plain JSON: non-finite
//! gauges serialize as `null`. [`validate_json`] is a minimal
//! recursive-descent checker used by the exporter tests and the CI smoke
//! job — the workspace deliberately has no full JSON dependency.

use std::fmt::Write as _;

use crate::registry::{MetricValue, MetricsRegistry};

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn gauge_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes a registry under the `tcf-metrics/v1` schema.
pub fn metrics_json(reg: &MetricsRegistry) -> String {
    let mut out = String::from("{\"schema\":\"tcf-metrics/v1\"");

    out.push_str(",\"counters\":{");
    let mut first = true;
    for (name, v) in reg.iter() {
        if let MetricValue::Counter(c) = v {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{c}", escape_str(name));
        }
    }
    out.push('}');

    out.push_str(",\"gauges\":{");
    let mut first = true;
    for (name, v) in reg.iter() {
        if let MetricValue::Gauge(g) = v {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", escape_str(name), gauge_json(*g));
        }
    }
    out.push('}');

    out.push_str(",\"histograms\":{");
    let mut first = true;
    for (name, v) in reg.iter() {
        if let MetricValue::Histogram(h) = v {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"buckets\":[",
                escape_str(name),
                h.count(),
                h.sum(),
                h.max(),
                gauge_json(h.mean()),
                h.p50(),
                h.p95()
            );
            for (i, (lo, hi, n)) in h.nonempty_buckets().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{n}]");
            }
            out.push_str("]}");
        }
    }
    out.push('}');

    out.push_str(",\"steps\":[");
    for (i, s) in reg.snapshots().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"step\":{},\"cycle\":{},\"values\":{{",
            s.step, s.cycle
        );
        for (j, (k, v)) in s.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_str(k));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Checks that `s` is one complete, well-formed JSON value.
///
/// Minimal recursive-descent validator (objects, arrays, strings with
/// escapes, numbers, `true`/`false`/`null`); returns a byte offset and
/// message on the first error. Used by exporter tests and the CI smoke
/// job in lieu of a JSON library dependency.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    if *i >= b.len() {
        return Err(format!("unexpected end of input at byte {i}"));
    }
    match b[*i] {
        b'{' => parse_object(b, i),
        b'[' => parse_array(b, i),
        b'"' => parse_string(b, i),
        b't' => parse_lit(b, i, b"true"),
        b'f' => parse_lit(b, i, b"false"),
        b'n' => parse_lit(b, i, b"null"),
        b'-' | b'0'..=b'9' => parse_number(b, i),
        c => Err(format!("unexpected byte {c:?} at {i}")),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *i >= lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b[*i] == b'-' {
        *i += 1;
    }
    let digits_start = *i;
    while *i < b.len() && b[*i].is_ascii_digit() {
        *i += 1;
    }
    if *i == digits_start {
        return Err(format!("bad number at byte {start}"));
    }
    if *i < b.len() && b[*i] == b'.' {
        *i += 1;
        let frac = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        if *i == frac {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if *i < b.len() && (b[*i] == b'e' || b[*i] == b'E') {
        *i += 1;
        if *i < b.len() && (b[*i] == b'+' || b[*i] == b'-') {
            *i += 1;
        }
        let exp = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        if *i == exp {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                if *i >= b.len() {
                    break;
                }
                match b[*i] {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *i += 1,
                    b'u' => {
                        if b.len() - *i < 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        *i += 5;
                    }
                    c => return Err(format!("bad escape {c:?} at byte {i}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '{'
    skip_ws(b, i);
    if *i < b.len() && b[*i] == b'}' {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if *i >= b.len() || b[*i] != b'"' {
            return Err(format!("expected object key at byte {i}"));
        }
        parse_string(b, i)?;
        skip_ws(b, i);
        if *i >= b.len() || b[*i] != b':' {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '['
    skip_ws(b, i);
    if *i < b.len() && b[*i] == b']' {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn validator_accepts_valid_json() {
        for s in [
            "{}",
            "[]",
            "null",
            "-1.5e10",
            "\"a \\\"quoted\\\" str\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":true}",
            "  [ 1 , 2 ]  ",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(validate_json(s).is_err(), "accepted: {s}");
        }
    }

    #[test]
    fn metrics_dump_is_valid_and_typed() {
        let mut r = MetricsRegistry::new();
        r.set_counter("machine.compute_ops", 42);
        r.set_gauge("machine.utilization", 0.75);
        r.set_gauge("machine.bad", f64::NAN);
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(5);
        r.set_histogram("net.queue", h);
        r.record_snapshot(1, 10);
        let json = metrics_json(&r);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"schema\":\"tcf-metrics/v1\""));
        assert!(json.contains("\"machine.compute_ops\":42"));
        assert!(json.contains("\"machine.utilization\":0.75"));
        assert!(json.contains("\"machine.bad\":null"));
        assert!(json.contains("\"net.queue\":{\"count\":2"));
        assert!(json.contains("\"steps\":[{\"step\":1,\"cycle\":10"));
    }

    #[test]
    fn empty_registry_dump_is_valid() {
        let json = metrics_json(&MetricsRegistry::new());
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"counters\":{}"));
        assert!(json.contains("\"steps\":[]"));
    }

    #[test]
    fn names_are_escaped() {
        let mut r = MetricsRegistry::new();
        r.set_counter("weird\"name", 1);
        let json = metrics_json(&r);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("weird\\\"name"));
    }
}
