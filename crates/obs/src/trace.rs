//! Execution traces.
//!
//! The paper illustrates each execution-model variant with a *single
//! processor view*: time on the horizontal axis, what the processor's
//! issue slot is doing in each cycle (which flow, which implicit thread,
//! or a bubble). [`Trace`] records exactly that, [`Trace::gantt`] renders
//! it (how the `repro` binary regenerates Figures 6–13), and
//! [`crate::chrome`] exports the same stream for Perfetto.
//!
//! Traces can record unbounded ([`Trace::recording`]) or into a bounded
//! ring buffer ([`Trace::ring`]) that keeps only the most recent window —
//! constant memory for arbitrarily long runs, at the cost of dropping the
//! oldest cycles (the drop count is reported via [`Trace::dropped`]).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::gantt;
use crate::ring::{Drained, RingBuffer};

/// Identifier of a flow (TCF) or, in baseline models, of a thread bunch.
pub type FlowTag = u32;

/// What an issue slot did in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitKind {
    /// Executed an ALU/compute operation.
    Compute,
    /// Issued a shared-memory reference.
    MemShared,
    /// Issued a local-memory reference.
    MemLocal,
    /// Fetched an instruction (NUMA mode / per-thread fetch accounting).
    Fetch,
    /// Waited — no operation available or replies outstanding.
    Bubble,
    /// Spent a cycle on flow management (TCF buffer reload, split/join
    /// bookkeeping).
    FlowOverhead,
}

impl UnitKind {
    /// One-character cell used in Gantt rendering.
    pub fn glyph(self) -> char {
        match self {
            UnitKind::Compute => '#',
            UnitKind::MemShared => 'M',
            UnitKind::MemLocal => 'L',
            UnitKind::Fetch => 'F',
            UnitKind::Bubble => '.',
            UnitKind::FlowOverhead => '+',
        }
    }

    /// Stable lowercase name, shared by the CSV, Chrome-trace and metrics
    /// exporters (unlike `Debug` formatting, this is a schema guarantee).
    pub fn as_str(self) -> &'static str {
        match self {
            UnitKind::Compute => "compute",
            UnitKind::MemShared => "shared",
            UnitKind::MemLocal => "local",
            UnitKind::Fetch => "fetch",
            UnitKind::Bubble => "bubble",
            UnitKind::FlowOverhead => "overhead",
        }
    }

    /// Whether the slot issued real work this cycle (not a bubble, not
    /// flow-management overhead). This is the "issued" of the paper's
    /// utilization figures.
    pub fn is_issue(self) -> bool {
        !matches!(self, UnitKind::Bubble | UnitKind::FlowOverhead)
    }

    /// Inverse of [`as_str`](Self::as_str), for stream re-readers.
    pub fn from_name(name: &str) -> Option<UnitKind> {
        Some(match name {
            "compute" => UnitKind::Compute,
            "shared" => UnitKind::MemShared,
            "local" => UnitKind::MemLocal,
            "fetch" => UnitKind::Fetch,
            "bubble" => UnitKind::Bubble,
            "overhead" => UnitKind::FlowOverhead,
            _ => return None,
        })
    }
}

/// One cycle of one group's issue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle number (machine-global time).
    pub cycle: u64,
    /// Processor group.
    pub group: usize,
    /// Flow (or bunch) occupying the slot; `None` for a bubble.
    pub flow: Option<FlowTag>,
    /// Implicit thread index within the flow, when meaningful.
    pub thread: Option<usize>,
    /// What happened.
    pub kind: UnitKind,
}

/// A recorded execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: RingBuffer<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A recording trace with unbounded storage.
    pub fn recording() -> Trace {
        Trace {
            events: RingBuffer::unbounded(),
            enabled: true,
        }
    }

    /// A recording trace that keeps only the `capacity` most recent
    /// events, dropping the oldest on overflow.
    pub fn ring(capacity: usize) -> Trace {
        Trace {
            events: RingBuffer::bounded(capacity),
            enabled: true,
        }
    }

    /// A disabled trace: `push` is a no-op. Benches use this so tracing
    /// overhead never pollutes timing measurements.
    pub fn disabled() -> Trace {
        Trace {
            events: RingBuffer::unbounded(),
            enabled: false,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled). `#[inline]` so a disabled
    /// trace costs one predictable branch at each call site.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// Snapshot of the recorded events, oldest first (in ring mode, only
    /// the retained window).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.snapshot()
    }

    /// Events evicted by ring-buffer overflow (0 in unbounded mode).
    pub fn dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Sequence number the next recorded event will get — the starting
    /// cursor for a subscriber that wants only future events.
    pub fn next_seq(&self) -> u64 {
        self.events.next_seq()
    }

    /// Incremental drain for streaming subscribers: every event with
    /// sequence number ≥ `cursor`, plus the advanced cursor and the count
    /// of events evicted before the subscriber saw them (drop-aware
    /// resume; see [`RingBuffer::drain_from`]).
    pub fn drain_from(&self, cursor: u64) -> Drained<TraceEvent> {
        self.events.drain_from(cursor)
    }

    /// Borrowing [`drain_from`](Trace::drain_from): `(events ≥ cursor,
    /// next cursor, missed)` without cloning into a vector.
    pub fn view_from(&self, cursor: u64) -> (impl Iterator<Item = &TraceEvent> + '_, u64, u64) {
        self.events.view_from(cursor)
    }

    /// Ring capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.events.capacity()
    }

    /// Number of cycles in which a group *issued* real work (compute,
    /// memory reference or fetch). Bubbles and flow-management overhead
    /// are not busy — they agree with `MachineStats::utilization`; use
    /// [`overhead_cycles`](Self::overhead_cycles) for the overhead
    /// breakdown.
    pub fn busy_cycles(&self, group: usize) -> u64 {
        self.events
            .iter()
            .filter(|e| e.group == group && e.kind.is_issue())
            .count() as u64
    }

    /// Number of flow-management overhead cycles recorded for a group.
    pub fn overhead_cycles(&self, group: usize) -> u64 {
        self.events
            .iter()
            .filter(|e| e.group == group && e.kind == UnitKind::FlowOverhead)
            .count() as u64
    }

    /// Utilization of a group over the traced window: issued / total
    /// events (bubbles and overhead both count toward the denominator
    /// only).
    pub fn utilization(&self, group: usize) -> f64 {
        let total = self.events.iter().filter(|e| e.group == group).count();
        if total == 0 {
            return 0.0;
        }
        self.busy_cycles(group) as f64 / total as f64
    }

    /// Renders the single-processor-view Gantt strip of one group.
    ///
    /// One row per flow (plus a bubble row), one column per cycle; each
    /// cell is the [`UnitKind::glyph`] of what the slot executed for that
    /// flow in that cycle. This is the visual language of the paper's
    /// Figures 6–12.
    pub fn gantt(&self, group: usize) -> String {
        let events = self.events();
        let mut out = String::new();
        if self.dropped() > 0 {
            let _ = writeln!(
                out,
                "!! truncated: ring dropped {} oldest trace events",
                self.dropped()
            );
        }
        out.push_str(&gantt::render(&events, group));
        out
    }

    /// Clears all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Exports the trace as CSV (`cycle,group,flow,thread,kind`), for
    /// external plotting of schedules. `flow`/`thread` are empty for
    /// bubbles; `kind` uses the stable [`UnitKind::as_str`] names.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,group,flow,thread,kind\n");
        for e in self.events.iter() {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                e.cycle,
                e.group,
                e.flow.map(|f| f.to_string()).unwrap_or_default(),
                e.thread.map(|t| t.to_string()).unwrap_or_default(),
                e.kind.as_str()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, flow: Option<FlowTag>, kind: UnitKind) -> TraceEvent {
        TraceEvent {
            cycle,
            group: 0,
            flow,
            thread: None,
            kind,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(ev(0, Some(1), UnitKind::Compute));
        assert!(t.events().is_empty());
    }

    #[test]
    fn utilization_counts_bubbles() {
        let mut t = Trace::recording();
        t.push(ev(0, Some(1), UnitKind::Compute));
        t.push(ev(1, None, UnitKind::Bubble));
        t.push(ev(2, Some(1), UnitKind::MemShared));
        t.push(ev(3, None, UnitKind::Bubble));
        assert_eq!(t.busy_cycles(0), 2);
        assert!((t.utilization(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn overhead_is_not_busy() {
        let mut t = Trace::recording();
        t.push(ev(0, Some(1), UnitKind::Compute));
        t.push(ev(1, Some(1), UnitKind::FlowOverhead));
        t.push(ev(2, Some(1), UnitKind::FlowOverhead));
        t.push(ev(3, None, UnitKind::Bubble));
        assert_eq!(t.busy_cycles(0), 1);
        assert_eq!(t.overhead_cycles(0), 2);
        assert!((t.utilization(0) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ring_mode_keeps_recent_window() {
        let mut t = Trace::ring(2);
        for c in 0..5 {
            t.push(ev(c, Some(1), UnitKind::Compute));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].cycle, 3);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.capacity(), Some(2));
    }

    #[test]
    fn gantt_renders_rows_per_flow() {
        let mut t = Trace::recording();
        t.push(ev(10, Some(1), UnitKind::Compute));
        t.push(ev(11, Some(2), UnitKind::MemShared));
        t.push(ev(12, None, UnitKind::Bubble));
        let g = t.gantt(0);
        assert!(g.contains("flow   1 |#  |"));
        assert!(g.contains("flow   2 | M |"));
        assert!(g.contains("(idle) |  .|"));
    }

    #[test]
    fn gantt_empty_group() {
        let t = Trace::recording();
        assert!(t.gantt(3).contains("no events"));
    }

    #[test]
    fn gantt_warns_when_ring_truncated() {
        let mut t = Trace::ring(1);
        t.push(ev(0, Some(1), UnitKind::Compute));
        t.push(ev(1, Some(1), UnitKind::Compute));
        let g = t.gantt(0);
        assert!(g.starts_with("!! truncated: ring dropped 1 oldest trace events"));
        // An untruncated trace renders without the warning.
        assert!(Trace::recording().gantt(0).starts_with("group 0"));
    }

    #[test]
    fn drain_from_resumes_after_drops() {
        let mut t = Trace::ring(2);
        for c in 0..5 {
            t.push(ev(c, Some(1), UnitKind::Compute));
        }
        let d = t.drain_from(0);
        assert_eq!(d.missed, 3);
        assert_eq!(d.items.len(), 2);
        assert_eq!(d.items[0].cycle, 3);
        assert_eq!(d.cursor, t.next_seq());
    }

    #[test]
    fn csv_export_uses_stable_names() {
        let mut t = Trace::recording();
        t.push(ev(5, Some(2), UnitKind::MemShared));
        t.push(ev(6, None, UnitKind::Bubble));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,group,flow,thread,kind");
        assert_eq!(lines[1], "5,0,2,,shared");
        assert_eq!(lines[2], "6,0,,,bubble");
    }

    #[test]
    fn kind_names_cover_all_variants() {
        let kinds = [
            UnitKind::Compute,
            UnitKind::MemShared,
            UnitKind::MemLocal,
            UnitKind::Fetch,
            UnitKind::Bubble,
            UnitKind::FlowOverhead,
        ];
        let names: Vec<_> = kinds.iter().map(|k| k.as_str()).collect();
        assert_eq!(
            names,
            vec!["compute", "shared", "local", "fetch", "bubble", "overhead"]
        );
    }
}
