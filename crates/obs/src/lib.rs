#![warn(missing_docs)]
//! # tcf-obs — unified observability layer
//!
//! The simulator stack's measurement substrate, kept *below* the machine
//! crates so every layer (network, memory, timing pipeline, runtimes,
//! experiment harness) can record into one shared vocabulary:
//!
//! * [`Trace`] — per-cycle, per-slot issue records ([`TraceEvent`]) with an
//!   optional bounded ring-buffer mode, ASCII Gantt rendering and CSV
//!   export. This is the paper's "single processor view" (Figures 6–13).
//! * [`FlowEvent`] / [`TimedEvent`] — flow-lifecycle events (spawn, split,
//!   join, PRAM↔NUMA mode switches, thickness changes, TCF-buffer reloads,
//!   waits) emitted by the runtimes through an [`ObsSink`].
//! * [`ObsSink`] — the emission point: a concrete struct whose
//!   [`emit`](ObsSink::emit) compiles to a branch on one bool when
//!   disabled, so instrumentation costs nothing in benchmark runs.
//! * [`stream`] — cursor-based incremental drains over the sinks
//!   (monotonic sequence numbers, drop-aware resume) and the
//!   `tcf-obs-stream/v2` NDJSON wire format for live subscribers
//!   (`repro --stream`, `tdbg top`).
//! * [`LatencyHistogram`] — fixed log2-bucket, allocation-free histograms
//!   for shared-memory round trips, network queueing and buffer reloads.
//! * [`MetricsRegistry`] — named, typed series unifying the per-subsystem
//!   counter structs, with per-step snapshots and event-stream replay.
//! * [`chrome`] / [`json`] — exporters: Chrome `trace_event` JSON (open the
//!   file in Perfetto / `chrome://tracing`) and a stable-schema metrics
//!   dump.
//!
//! The crate is dependency-free (standard library only) by design: it sits
//! at the bottom of the workspace graph, and `tcf-machine` re-exports the
//! trace types so existing callers are unaffected.

pub mod chrome;
pub mod event;
pub mod gantt;
pub mod hist;
pub mod json;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod stream;
pub mod trace;

pub use event::{FlowEvent, Mode, TimedEvent};
pub use hist::LatencyHistogram;
pub use registry::{MetricValue, MetricsRegistry, StepSnapshot};
pub use ring::{Drained, RingBuffer};
pub use sink::ObsSink;
pub use stream::{StreamCursor, StreamReassembly, STREAM_SCHEMA};
pub use trace::{FlowTag, Trace, TraceEvent, UnitKind};
