//! The event emission point for the runtimes.
//!
//! [`ObsSink`] is a concrete struct, not a trait object: the executors
//! call [`ObsSink::emit`] unconditionally on their hot paths, and when the
//! sink is disabled the `#[inline]` guard compiles each call down to a
//! branch on one bool — no dynamic dispatch, no allocation, no formatting.
//! The `obs_overhead` bench in `tcf-bench` holds this to <2% end-to-end.

use serde::{Deserialize, Serialize};

use crate::event::{FlowEvent, TimedEvent};
use crate::ring::{Drained, RingBuffer};

/// Collects [`FlowEvent`]s stamped with step/cycle, or discards them when
/// disabled.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSink {
    events: RingBuffer<TimedEvent>,
    enabled: bool,
}

impl ObsSink {
    /// A disabled sink: [`emit`](Self::emit) is a no-op. This is the
    /// default, so instrumented machines cost nothing unless observing is
    /// switched on.
    pub fn disabled() -> ObsSink {
        ObsSink {
            events: RingBuffer::unbounded(),
            enabled: false,
        }
    }

    /// A recording sink with unbounded storage.
    pub fn recording() -> ObsSink {
        ObsSink {
            events: RingBuffer::unbounded(),
            enabled: true,
        }
    }

    /// A recording sink keeping only the `capacity` most recent events.
    pub fn ring(capacity: usize) -> ObsSink {
        ObsSink {
            events: RingBuffer::bounded(capacity),
            enabled: true,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at (`step`, `cycle`); no-op when disabled. The
    /// enabled path is out-of-line so the disabled path stays a single
    /// predictable branch at each call site.
    #[inline]
    pub fn emit(&mut self, step: u64, cycle: u64, event: FlowEvent) {
        if self.enabled {
            self.record(TimedEvent { step, cycle, event });
        }
    }

    #[cold]
    fn record(&mut self, ev: TimedEvent) {
        self.events.push(ev);
    }

    /// Appends every event of `other` (oldest first, stamps preserved) to
    /// this sink; a no-op when this sink is disabled. This is the merge
    /// point for per-worker sinks: the parallel engine hands each worker
    /// its own sink and absorbs them at the step barrier in fragment/group
    /// order, so the merged stream is identical to what single-threaded
    /// execution would have recorded.
    pub fn absorb(&mut self, other: &ObsSink) {
        if self.enabled {
            for ev in other.events() {
                self.events.push(ev);
            }
        }
    }

    /// Snapshot of the recorded events, oldest first (ring mode: only the
    /// retained window).
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.snapshot()
    }

    /// Events evicted by ring-buffer overflow (0 in unbounded mode).
    pub fn dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Sequence number the next recorded event will get — the starting
    /// cursor for a subscriber that wants only future events.
    pub fn next_seq(&self) -> u64 {
        self.events.next_seq()
    }

    /// Incremental drain for streaming subscribers: every event with
    /// sequence number ≥ `cursor`, plus the advanced cursor and the count
    /// of events evicted before the subscriber saw them (drop-aware
    /// resume; see [`RingBuffer::drain_from`]).
    pub fn drain_from(&self, cursor: u64) -> Drained<TimedEvent> {
        self.events.drain_from(cursor)
    }

    /// Borrowing [`drain_from`](ObsSink::drain_from): `(events ≥ cursor,
    /// next cursor, missed)` without cloning into a vector.
    pub fn view_from(&self, cursor: u64) -> (impl Iterator<Item = &TimedEvent> + '_, u64, u64) {
        self.events.view_from(cursor)
    }

    /// Ring capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.events.capacity()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears retained events (the dropped count is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_discards() {
        let mut s = ObsSink::disabled();
        s.emit(1, 10, FlowEvent::FlowHalted { flow: 1 });
        assert!(s.is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn recording_sink_stamps_events() {
        let mut s = ObsSink::recording();
        s.emit(2, 17, FlowEvent::Split { flow: 1, arms: 2 });
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].step, 2);
        assert_eq!(evs[0].cycle, 17);
        assert_eq!(evs[0].event, FlowEvent::Split { flow: 1, arms: 2 });
    }

    #[test]
    fn ring_sink_bounds_memory() {
        let mut s = ObsSink::ring(3);
        for i in 0..10 {
            s.emit(i, i, FlowEvent::FlowHalted { flow: i as u32 });
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 7);
        assert_eq!(s.events()[0].step, 7);
        assert_eq!(s.capacity(), Some(3));
    }

    #[test]
    fn default_is_disabled() {
        assert!(!ObsSink::default().is_enabled());
    }

    #[test]
    fn absorb_appends_in_order_with_stamps() {
        let mut main = ObsSink::recording();
        main.emit(1, 5, FlowEvent::FlowHalted { flow: 0 });
        let mut w1 = ObsSink::recording();
        w1.emit(2, 7, FlowEvent::FlowHalted { flow: 1 });
        w1.emit(2, 7, FlowEvent::FlowHalted { flow: 2 });
        let mut w2 = ObsSink::recording();
        w2.emit(2, 7, FlowEvent::FlowHalted { flow: 3 });
        main.absorb(&w1);
        main.absorb(&w2);
        let evs = main.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[1].event, FlowEvent::FlowHalted { flow: 1 });
        assert_eq!(evs[3].event, FlowEvent::FlowHalted { flow: 3 });
        assert_eq!(evs[1].step, 2);
        assert_eq!(evs[1].cycle, 7);
    }

    #[test]
    fn absorb_into_disabled_sink_is_noop() {
        let mut main = ObsSink::disabled();
        let mut w = ObsSink::recording();
        w.emit(1, 1, FlowEvent::FlowHalted { flow: 1 });
        main.absorb(&w);
        assert!(main.is_empty());
    }
}
