//! A bounded (or unbounded) event buffer.
//!
//! Long simulations emit millions of per-cycle records; observability must
//! not change the asymptotics of a run. [`RingBuffer`] therefore supports a
//! fixed capacity: once full, the oldest entries are dropped (and counted),
//! keeping memory constant while the most recent window stays inspectable —
//! the mode `tdbg` and long sweeps use.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// FIFO buffer with optional capacity; overflow drops the oldest entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingBuffer<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    dropped: u64,
}

// Manual impl: the derive would needlessly require `T: Default`.
impl<T> Default for RingBuffer<T> {
    fn default() -> RingBuffer<T> {
        RingBuffer::unbounded()
    }
}

impl<T> RingBuffer<T> {
    /// An unbounded buffer.
    pub fn unbounded() -> RingBuffer<T> {
        RingBuffer {
            items: VecDeque::new(),
            capacity: None,
            dropped: 0,
        }
    }

    /// A buffer keeping at most `capacity` entries (the most recent ones).
    pub fn bounded(capacity: usize) -> RingBuffer<T> {
        assert!(capacity > 0, "ring buffer needs at least one slot");
        RingBuffer {
            items: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest when at capacity.
    pub fn push(&mut self, item: T) {
        if let Some(cap) = self.capacity {
            if self.items.len() == cap {
                self.items.pop_front();
                self.dropped += 1;
            }
        }
        self.items.push_back(item);
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all entries (the dropped count is kept).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T: Clone> RingBuffer<T> {
    /// The retained window as a vector, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_everything() {
        let mut r = RingBuffer::unbounded();
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.snapshot()[0], 0);
    }

    #[test]
    fn bounded_drops_oldest() {
        let mut r = RingBuffer::bounded(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.capacity(), Some(3));
    }

    #[test]
    fn clear_keeps_dropped_count() {
        let mut r = RingBuffer::bounded(1);
        r.push(1);
        r.push(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }
}
