//! A bounded (or unbounded) event buffer.
//!
//! Long simulations emit millions of per-cycle records; observability must
//! not change the asymptotics of a run. [`RingBuffer`] therefore supports a
//! fixed capacity: once full, the oldest entries are dropped (and counted),
//! keeping memory constant while the most recent window stays inspectable —
//! the mode `tdbg` and long sweeps use.
//!
//! Every entry also carries an implicit monotonic **sequence number**: the
//! first entry ever pushed is seq 0, and eviction never renumbers. A
//! streaming subscriber holds a cursor (the next seq it wants) and calls
//! [`RingBuffer::drain_from`] to pick up everything that arrived since —
//! including, when it fell behind a bounded buffer, an exact count of the
//! entries it missed ([`Drained::missed`]). This is the substrate of the
//! incremental NDJSON export (`crate::stream`).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Result of one cursor drain: the entries with sequence numbers in
/// `[cursor, next_seq)` that were still retained, the advanced cursor, and
/// how many requested entries had already been evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drained<T> {
    /// The drained entries, oldest first.
    pub items: Vec<T>,
    /// The cursor to pass to the next drain (= the buffer's `next_seq`).
    pub cursor: u64,
    /// Entries in `[old cursor, next_seq)` that were evicted before this
    /// drain could see them (0 when the subscriber kept up).
    pub missed: u64,
}

/// FIFO buffer with optional capacity; overflow drops the oldest entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingBuffer<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    dropped: u64,
    /// Total entries ever pushed; the next entry's sequence number.
    pushed: u64,
}

// Manual impl: the derive would needlessly require `T: Default`.
impl<T> Default for RingBuffer<T> {
    fn default() -> RingBuffer<T> {
        RingBuffer::unbounded()
    }
}

impl<T> RingBuffer<T> {
    /// An unbounded buffer.
    pub fn unbounded() -> RingBuffer<T> {
        RingBuffer {
            items: VecDeque::new(),
            capacity: None,
            dropped: 0,
            pushed: 0,
        }
    }

    /// A buffer keeping at most `capacity` entries (the most recent ones).
    pub fn bounded(capacity: usize) -> RingBuffer<T> {
        assert!(capacity > 0, "ring buffer needs at least one slot");
        RingBuffer {
            items: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
            pushed: 0,
        }
    }

    /// Appends an entry, evicting the oldest when at capacity.
    pub fn push(&mut self, item: T) {
        if let Some(cap) = self.capacity {
            if self.items.len() == cap {
                self.items.pop_front();
                self.dropped += 1;
            }
        }
        self.items.push_back(item);
        self.pushed += 1;
    }

    /// Sequence number the *next* pushed entry will get (= total entries
    /// ever pushed). A subscriber that wants only future entries starts
    /// its cursor here.
    pub fn next_seq(&self) -> u64 {
        self.pushed
    }

    /// Sequence number of the oldest entry still retained (= `next_seq`
    /// when the buffer is empty). Everything before it is gone for good.
    pub fn first_seq(&self) -> u64 {
        self.pushed - self.items.len() as u64
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all entries (the dropped count is kept).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T: Clone> RingBuffer<T> {
    /// The retained window as a vector, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }

    /// Drains every entry with sequence number ≥ `cursor`, non-destructively
    /// (the buffer keeps its window; the *subscriber* owns the cursor).
    ///
    /// When `cursor` has fallen behind `first_seq` — the bounded buffer
    /// evicted entries the subscriber never saw — the gap is reported in
    /// [`Drained::missed`] and the drain resumes at the oldest retained
    /// entry. Concatenating the `items` of successive drains therefore
    /// reconstructs the exact push sequence whenever `missed` stays 0
    /// (the cursor/drain property test in `tests/` pins this down).
    pub fn drain_from(&self, cursor: u64) -> Drained<T> {
        let (items, cursor, missed) = self.view_from(cursor);
        Drained {
            items: items.cloned().collect(),
            cursor,
            missed,
        }
    }
}

impl<T> RingBuffer<T> {
    /// The borrowing form of [`drain_from`](RingBuffer::drain_from):
    /// `(retained entries ≥ cursor, next cursor, missed)` with no clone
    /// and no allocation — what the streaming NDJSON encoder walks.
    pub fn view_from(&self, cursor: u64) -> (impl Iterator<Item = &T> + '_, u64, u64) {
        let first = self.first_seq();
        let missed = first.saturating_sub(cursor);
        let skip = cursor.saturating_sub(first) as usize;
        (self.items.iter().skip(skip), self.pushed, missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_everything() {
        let mut r = RingBuffer::unbounded();
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.snapshot()[0], 0);
    }

    #[test]
    fn bounded_drops_oldest() {
        let mut r = RingBuffer::bounded(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.capacity(), Some(3));
    }

    #[test]
    fn clear_keeps_dropped_count() {
        let mut r = RingBuffer::bounded(1);
        r.push(1);
        r.push(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn sequence_numbers_survive_eviction() {
        let mut r = RingBuffer::bounded(2);
        assert_eq!((r.first_seq(), r.next_seq()), (0, 0));
        for i in 0..5 {
            r.push(i);
        }
        // Entries 0..=2 were evicted; 3 and 4 remain as seqs 3 and 4.
        assert_eq!((r.first_seq(), r.next_seq()), (3, 5));
        r.clear();
        assert_eq!((r.first_seq(), r.next_seq()), (5, 5));
    }

    #[test]
    fn drain_from_is_incremental() {
        let mut r = RingBuffer::unbounded();
        r.push(10);
        r.push(11);
        let d = r.drain_from(0);
        assert_eq!((d.items.clone(), d.cursor, d.missed), (vec![10, 11], 2, 0));
        r.push(12);
        let d = r.drain_from(d.cursor);
        assert_eq!((d.items.clone(), d.cursor, d.missed), (vec![12], 3, 0));
        // Nothing new: empty drain, cursor stands still.
        let d = r.drain_from(d.cursor);
        assert!(d.items.is_empty());
        assert_eq!((d.cursor, d.missed), (3, 0));
    }

    #[test]
    fn drain_from_reports_missed_entries() {
        let mut r = RingBuffer::bounded(2);
        for i in 0..6 {
            r.push(i);
        }
        // Cursor 1 wants seqs 1..6, but only 4 and 5 survive: 3 missed.
        let d = r.drain_from(1);
        assert_eq!((d.items.clone(), d.cursor, d.missed), (vec![4, 5], 6, 3));
    }

    #[test]
    fn drain_from_mid_window_skips_seen_entries() {
        let mut r = RingBuffer::bounded(4);
        for i in 0..6 {
            r.push(i);
        }
        // Window holds seqs 2..6; a cursor inside it drains the tail only.
        let d = r.drain_from(4);
        assert_eq!((d.items.clone(), d.cursor, d.missed), (vec![4, 5], 6, 0));
    }
}
