//! Named, typed metric series.
//!
//! The simulator's subsystems each keep their own counter struct
//! (`MachineStats`, `NetStats`, `StepStats`, TCF-buffer counters). The
//! [`MetricsRegistry`] unifies them into one namespace of named series —
//! counters, gauges and [`LatencyHistogram`]s — so exporters and the CLI
//! can enumerate everything a run measured without knowing each struct.
//! Names are dotted and stable (`machine.compute_ops`, `net.queue`,
//! `buffer.reload`, …); see `docs/OBSERVABILITY.md` for the full list.
//!
//! [`MetricsRegistry::replay`] rebuilds the machine counters purely from a
//! recorded event stream — the property test in `tcf-bench` checks that
//! replay agrees with the live `MachineStats` on every execution variant,
//! which pins down that the trace stream is complete (nothing is counted
//! that is not traced, and vice versa).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{FlowEvent, TimedEvent};
use crate::hist::LatencyHistogram;
use crate::trace::{TraceEvent, UnitKind};

/// One metric series: a monotonic counter, an instantaneous gauge, or a
/// latency distribution.
///
/// The histogram variant is much larger than the scalar ones; that is
/// fine — registries hold a few dozen series, and keeping the enum `Copy`
/// (no boxing) keeps the accessors trivial.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous derived value (utilization, IPC, ratios).
    Gauge(f64),
    /// Latency distribution.
    Histogram(LatencyHistogram),
}

/// Cumulative counter values captured at the end of one machine step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepSnapshot {
    /// 1-based step number the snapshot closes.
    pub step: u64,
    /// Machine clock (cycles) at the snapshot.
    pub cycle: u64,
    /// Cumulative counter series at this step (counters only; gauges and
    /// histograms are end-of-run values).
    pub values: BTreeMap<String, u64>,
}

/// A namespace of named metric series plus optional per-step snapshots.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    series: BTreeMap<String, MetricValue>,
    snapshots: Vec<StepSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Sets (or replaces) a counter series.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.series
            .insert(name.to_string(), MetricValue::Counter(v));
    }

    /// Adds to a counter series, creating it at 0 first if absent. Panics
    /// if `name` already holds a gauge or histogram.
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self
            .series
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += v,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Sets (or replaces) a gauge series.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.series.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Sets (or replaces) a histogram series.
    pub fn set_histogram(&mut self, name: &str, h: LatencyHistogram) {
        self.series
            .insert(name.to_string(), MetricValue::Histogram(h));
    }

    /// Reads a counter (`None` if absent or of another type).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.series.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Reads a gauge (`None` if absent or of another type).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.series.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Reads a histogram (`None` if absent or of another type).
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        match self.series.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// All series as `(name, value)`, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Captures the current counter series as a [`StepSnapshot`].
    pub fn record_snapshot(&mut self, step: u64, cycle: u64) {
        let values = self
            .series
            .iter()
            .filter_map(|(k, v)| match v {
                MetricValue::Counter(c) => Some((k.clone(), *c)),
                _ => None,
            })
            .collect();
        self.snapshots.push(StepSnapshot {
            step,
            cycle,
            values,
        });
    }

    /// Per-step snapshots, in step order.
    pub fn snapshots(&self) -> &[StepSnapshot] {
        &self.snapshots
    }

    /// Mutable access to the snapshot list, for callers that graft
    /// snapshots replayed from an event stream onto a live registry.
    pub fn snapshots_mut(&mut self) -> &mut Vec<StepSnapshot> {
        &mut self.snapshots
    }

    /// Rebuilds the `machine.*` counters from recorded streams: per-cycle
    /// issue records (`trace`) plus the flow-event stream (`events`).
    ///
    /// Issue kinds map to their counters (compute → `machine.compute_ops`,
    /// shared → `machine.shared_refs`, …); `Fetch` and `Spill` flow events
    /// add `machine.fetches` / `machine.spill_refs` (fetches and spill
    /// accounting never occupy an issue slot of their own); `StepEnd`
    /// events drive `machine.steps` / `machine.cycles` and close one
    /// [`StepSnapshot`] each. Both streams must be complete (recorded
    /// unbounded, not through a ring).
    pub fn replay(trace: &[TraceEvent], events: &[TimedEvent]) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for name in [
            "machine.steps",
            "machine.cycles",
            "machine.compute_ops",
            "machine.shared_refs",
            "machine.local_refs",
            "machine.fetches",
            "machine.bubbles",
            "machine.overhead_cycles",
            "machine.spill_refs",
        ] {
            reg.set_counter(name, 0);
        }
        // Two cursors: flow events are globally ordered; trace events are
        // ordered per step (cycles of step k all precede the StepEnd cycle
        // of step k), so the trace cursor is advanced at each StepEnd to
        // keep snapshots cumulative and exact.
        let mut ti = 0;
        let mut drain_trace_until = |reg: &mut MetricsRegistry, limit: Option<u64>| {
            while ti < trace.len() && limit.is_none_or(|c| trace[ti].cycle < c) {
                let name = match trace[ti].kind {
                    UnitKind::Compute => "machine.compute_ops",
                    UnitKind::MemShared => "machine.shared_refs",
                    UnitKind::MemLocal => "machine.local_refs",
                    UnitKind::Fetch => "machine.fetches",
                    UnitKind::Bubble => "machine.bubbles",
                    UnitKind::FlowOverhead => "machine.overhead_cycles",
                };
                reg.add_counter(name, 1);
                ti += 1;
            }
        };
        for ev in events {
            match ev.event {
                FlowEvent::Fetch { .. } => reg.add_counter("machine.fetches", 1),
                FlowEvent::Spill { lanes, .. } => {
                    reg.add_counter("machine.spill_refs", lanes as u64)
                }
                FlowEvent::StepEnd { step, cycle } => {
                    drain_trace_until(&mut reg, Some(cycle));
                    reg.set_counter("machine.steps", step);
                    reg.set_counter("machine.cycles", cycle);
                    reg.record_snapshot(step, cycle);
                }
                _ => {}
            }
        }
        drain_trace_until(&mut reg, None);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FlowTag;

    fn unit(cycle: u64, kind: UnitKind) -> TraceEvent {
        TraceEvent {
            cycle,
            group: 0,
            flow: Some(1 as FlowTag),
            thread: None,
            kind,
        }
    }

    fn timed(step: u64, cycle: u64, event: FlowEvent) -> TimedEvent {
        TimedEvent { step, cycle, event }
    }

    #[test]
    fn typed_accessors() {
        let mut r = MetricsRegistry::new();
        r.set_counter("a", 3);
        r.set_gauge("b", 0.5);
        let mut h = LatencyHistogram::new();
        h.record(9);
        r.set_histogram("c", h);
        assert_eq!(r.counter("a"), Some(3));
        assert_eq!(r.gauge("b"), Some(0.5));
        assert_eq!(r.histogram("c").unwrap().count(), 1);
        assert_eq!(r.counter("b"), None);
        assert_eq!(r.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn add_counter_accumulates() {
        let mut r = MetricsRegistry::new();
        r.add_counter("x", 2);
        r.add_counter("x", 3);
        assert_eq!(r.counter("x"), Some(5));
    }

    #[test]
    fn replay_counts_units_and_flow_events() {
        let trace = vec![
            unit(0, UnitKind::Compute),
            unit(1, UnitKind::MemShared),
            unit(2, UnitKind::Bubble),
            unit(3, UnitKind::MemLocal),
            unit(4, UnitKind::FlowOverhead),
        ];
        let events = vec![
            timed(0, 0, FlowEvent::Fetch { flow: 1 }),
            timed(
                0,
                3,
                FlowEvent::Spill {
                    flow: 1,
                    group: 0,
                    lanes: 3,
                },
            ),
            timed(1, 5, FlowEvent::StepEnd { step: 1, cycle: 5 }),
        ];
        let r = MetricsRegistry::replay(&trace, &events);
        assert_eq!(r.counter("machine.compute_ops"), Some(1));
        assert_eq!(r.counter("machine.shared_refs"), Some(1));
        assert_eq!(r.counter("machine.local_refs"), Some(1));
        assert_eq!(r.counter("machine.bubbles"), Some(1));
        assert_eq!(r.counter("machine.overhead_cycles"), Some(1));
        assert_eq!(r.counter("machine.fetches"), Some(1));
        // One run-compressed spill event carrying 3 lanes = 3 references.
        assert_eq!(r.counter("machine.spill_refs"), Some(3));
        assert_eq!(r.counter("machine.steps"), Some(1));
        assert_eq!(r.counter("machine.cycles"), Some(5));
    }

    #[test]
    fn replay_snapshots_are_cumulative_per_step() {
        let trace = vec![
            unit(0, UnitKind::Compute),
            unit(1, UnitKind::Compute),
            unit(2, UnitKind::MemShared),
        ];
        let events = vec![
            timed(1, 2, FlowEvent::StepEnd { step: 1, cycle: 2 }),
            timed(2, 3, FlowEvent::StepEnd { step: 2, cycle: 3 }),
        ];
        let r = MetricsRegistry::replay(&trace, &events);
        let snaps = r.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].values["machine.compute_ops"], 2);
        assert_eq!(snaps[0].values["machine.shared_refs"], 0);
        assert_eq!(snaps[1].values["machine.shared_refs"], 1);
        assert_eq!(snaps[1].cycle, 3);
    }

    #[test]
    fn trailing_units_after_last_step_are_counted() {
        let trace = vec![unit(0, UnitKind::Compute), unit(9, UnitKind::Bubble)];
        let r = MetricsRegistry::replay(&trace, &[]);
        assert_eq!(r.counter("machine.compute_ops"), Some(1));
        assert_eq!(r.counter("machine.bubbles"), Some(1));
        assert!(r.snapshots().is_empty());
    }
}
