//! Satellite property: cursor-based incremental drains are a faithful
//! decomposition of the batch export. A subscriber that drains a
//! [`RingBuffer`] at arbitrary intervals sees, per drain, exactly the
//! retained suffix of the push sequence past its cursor — and when the
//! buffer is bounded and the subscriber falls behind, the reported
//! `missed` count accounts for every evicted entry, so
//! `drained + missed == pushed` always, and with no drops the
//! concatenated drains reconstruct the batch-export sequence byte for
//! byte.

use proptest::prelude::*;

use tcf_obs::RingBuffer;

/// Pushes `0..total` (the item *is* its sequence number) into a buffer of
/// the given capacity, draining after each batch in `batches`; checks
/// every drain against the reference push sequence and returns the
/// concatenated drains plus the total missed count.
fn run_drains(capacity: Option<usize>, batches: &[usize]) -> (Vec<u64>, u64) {
    let mut ring = match capacity {
        Some(cap) => RingBuffer::bounded(cap),
        None => RingBuffer::unbounded(),
    };
    let mut next = 0u64;
    let mut cursor = 0u64;
    let mut collected: Vec<u64> = Vec::new();
    let mut missed_total = 0u64;
    for &batch in batches {
        for _ in 0..batch {
            ring.push(next);
            next += 1;
        }
        let d = ring.drain_from(cursor);
        // The drain resumes precisely `missed` entries past the cursor
        // and runs to the end of the push sequence.
        let resume = cursor + d.missed;
        let expect: Vec<u64> = (resume..next).collect();
        assert_eq!(d.items, expect, "drain window mismatch");
        assert_eq!(d.cursor, next, "cursor must advance to next_seq");
        assert_eq!(
            d.missed,
            ring.first_seq().saturating_sub(cursor),
            "missed must equal the evicted gap"
        );
        collected.extend(&d.items);
        missed_total += d.missed;
        cursor = d.cursor;
    }
    assert_eq!(
        collected.len() as u64 + missed_total,
        next,
        "every pushed entry is either drained or reported missed"
    );
    (collected, missed_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unbounded buffer: incremental drains concatenate to exactly the
    /// batch-export sequence, nothing ever missed.
    #[test]
    fn unbounded_drains_reconstruct_batch(
        batches in prop::collection::vec(0usize..12, 1..10)
    ) {
        let total: usize = batches.iter().sum();
        let (collected, missed) = run_drains(None, &batches);
        prop_assert_eq!(missed, 0);
        prop_assert_eq!(collected, (0..total as u64).collect::<Vec<_>>());
    }

    /// Bounded buffer, subscriber keeping up (every drain interval fits
    /// the capacity): still a perfect reconstruction, even though the
    /// buffer itself evicted entries between drains of earlier windows.
    #[test]
    fn keeping_up_with_bounded_ring_loses_nothing(
        cap in 1usize..16,
        rounds in 1usize..12
    ) {
        let batches = vec![cap; rounds];
        let (collected, missed) = run_drains(Some(cap), &batches);
        prop_assert_eq!(missed, 0);
        prop_assert_eq!(collected, (0..(cap * rounds) as u64).collect::<Vec<_>>());
    }

    /// Bounded buffer with forced drops (intervals may exceed capacity):
    /// the per-drain invariants checked inside `run_drains` hold, and the
    /// missed totals account exactly for the entries that cannot appear.
    #[test]
    fn forced_drops_are_accounted_exactly(
        cap in 1usize..8,
        batches in prop::collection::vec(0usize..24, 1..10)
    ) {
        let total: usize = batches.iter().sum();
        let (collected, missed) = run_drains(Some(cap), &batches);
        prop_assert_eq!(collected.len() as u64 + missed, total as u64);
        // Drops happen exactly when a batch overflows the capacity.
        let expect_missed: u64 = batches
            .iter()
            .map(|&b| b.saturating_sub(cap) as u64)
            .sum();
        prop_assert_eq!(missed, expect_missed);
    }
}
