#![warn(missing_docs)]
//! # tcf-pram — the original PRAM-NUMA model of computation (baseline)
//!
//! This crate implements the model the paper *extends*: a configurable
//! synchronous shared-memory machine of `P` groups × `T_p` threads
//! (Forsell & Leppänen §2.1, Figure 2). It is both a complete runtime in
//! its own right and the baseline every TCF experiment compares against:
//!
//! * **PRAM mode** — in each synchronous step every live thread executes
//!   exactly one instruction; shared-memory reads observe the pre-step
//!   state; concurrent writes resolve per the machine's CRCW policy;
//!   multioperations and multiprefixes complete in one step.
//! * **NUMA mode** — two or more threads of one group are configured into
//!   a *bunch* that executes a single instruction stream like one faster
//!   processor: a bunch of `T` threads executes `T` consecutive
//!   instructions per step against the group's local memory block.
//! * **Fixed slot rotation** — a group's issue pipeline always cycles
//!   through its `T_p` thread slots, so dead or idle slots burn cycles.
//!   This is the low-TLP utilization problem that motivates both NUMA
//!   bunching and, ultimately, the TCF extension.
//!
//! Thread-model programs are written against the global thread rank
//! (`mfs rd, tid` — the `thread_id` of the paper's §4 examples) and use
//! loops/guards to bridge problem size and machine size; the `tcf-core`
//! crate implements the extended model that removes exactly that thread
//! arithmetic.

pub mod bunch;
pub mod error;
pub mod machine;
pub mod summary;
pub mod thread;

pub use bunch::Bunch;
pub use error::{ExecError, Fault};
pub use machine::PramMachine;
pub use summary::{summary_metrics, RunSummary};
pub use thread::ThreadState;
