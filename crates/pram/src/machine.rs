//! The PRAM-NUMA machine: synchronous interpreter plus timing.
//!
//! Each synchronous step has five phases:
//!
//! 1. **Issue** — every running, unbunched thread executes exactly one
//!    instruction. Thread-private effects (registers, pc, call stack) and
//!    local-memory accesses apply immediately; shared-memory operations are
//!    collected as [`MemRef`]s.
//! 2. **Shared-memory step** — the collected references execute with PRAM
//!    semantics (reads see pre-step state, CRCW resolution, multioperation
//!    combining) in [`SharedMemory::step`].
//! 3. **Write-back** — read/multiprefix replies land in registers.
//! 4. **Bunch slices** — every NUMA bunch executes up to `len` consecutive
//!    instructions of its single stream with direct (sequentially
//!    consistent) memory access. Bunches therefore observe the step's PRAM
//!    writes; the paper leaves this ordering open and this choice is the
//!    deterministic one.
//! 5. **Timing** — each group's issued units run through its
//!    [`GroupPipeline`]: the PRAM portion as a full `T_p`-slot rotation
//!    (idle slots burn cycles — the baseline's low-TLP problem), the bunch
//!    portion serialized (sequential stream). The machine clock advances to
//!    the slowest group (synchronous step barrier).
//!
//! Local-memory accesses by PRAM-mode threads of one group are serialized
//! in thread order within the step; the local block is NUMA territory and
//! carries no PRAM read-before-write guarantee.

use std::sync::Arc;

use tcf_isa::instr::{Instr, MemSpace, Operand, Target};
use tcf_isa::program::Program;
use tcf_isa::reg::SpecialReg;
use tcf_isa::word::{to_addr, Word};
use tcf_machine::{GroupPipeline, IssueUnit, MachineConfig, MachineStats, Trace};
use tcf_mem::{LocalMemory, MemOp, MemRef, RefOrigin, SharedMemory, StepScratch, StepStats};
use tcf_net::Network;

use crate::bunch::Bunch;
use crate::error::{ExecError, Fault};
use crate::summary::RunSummary;
use crate::thread::{ThreadState, ThreadStatus};

/// Default step budget for [`PramMachine::run`].
pub const DEFAULT_STEP_BUDGET: u64 = 1_000_000;

struct GroupState {
    threads: Vec<ThreadState>,
    bunches: Vec<Bunch>,
}

/// A baseline PRAM-NUMA machine executing one program SPMD-style on all
/// `P × T_p` threads.
pub struct PramMachine {
    config: MachineConfig,
    program: Arc<Program>,
    shared: SharedMemory,
    locals: Vec<LocalMemory>,
    groups: Vec<GroupState>,
    pipes: Vec<GroupPipeline>,
    net: Network,
    trace: Trace,
    stats: MachineStats,
    mem_stats: StepStats,
    clock: u64,
    steps: u64,
    /// Persistent scratch of the shared-memory step.
    mem_scratch: StepScratch,
}

/// Pending register write-back from the shared-memory step.
struct Writeback {
    group: usize,
    thread: usize,
    rd: tcf_isa::reg::Reg,
    ref_idx: usize,
}

impl PramMachine {
    /// Builds a machine and loads `program` (including its static data).
    /// All threads start at the program entry.
    pub fn new(config: MachineConfig, program: Program) -> PramMachine {
        config.validate();
        let mut shared = SharedMemory::new(
            config.shared_size,
            config.groups,
            config.module_map,
            config.crcw,
        );
        shared
            .load_data(&program.data)
            .expect("program data outside configured shared memory");
        let groups = (0..config.groups)
            .map(|_| GroupState {
                threads: (0..config.threads_per_group)
                    .map(|_| ThreadState::new(program.entry, config.regs_per_thread))
                    .collect(),
                bunches: Vec::new(),
            })
            .collect();
        let pipes = (0..config.groups)
            .map(|g| {
                GroupPipeline::with_ilp(
                    g,
                    config.module_latency,
                    config.local_latency,
                    config.ilp_width,
                )
            })
            .collect();
        let locals = (0..config.groups)
            .map(|g| LocalMemory::new(g, config.local_size))
            .collect();
        let net = Network::new(config.topology, config.hop_latency);
        PramMachine {
            program: Arc::new(program),
            shared,
            locals,
            groups,
            pipes,
            net,
            trace: Trace::disabled(),
            stats: MachineStats::default(),
            mem_stats: StepStats::default(),
            clock: 0,
            steps: 0,
            mem_scratch: StepScratch::default(),
            config,
        }
    }

    /// Enables or disables execution tracing (disabled by default).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on {
            Trace::recording()
        } else {
            Trace::disabled()
        };
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The loaded program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Shared-memory host read.
    pub fn peek(&self, addr: usize) -> Result<Word, ExecError> {
        self.shared.peek(addr).map_err(|e| self.host_err(e.into()))
    }

    /// Shared-memory host read of a range.
    pub fn peek_range(&self, base: usize, len: usize) -> Result<Vec<Word>, ExecError> {
        self.shared
            .peek_range(base, len)
            .map_err(|e| self.host_err(e.into()))
    }

    /// Shared-memory host write.
    pub fn poke(&mut self, addr: usize, v: Word) -> Result<(), ExecError> {
        let step = self.steps;
        self.shared.poke(addr, v).map_err(|e| ExecError {
            fault: e.into(),
            step,
            group: 0,
            thread: None,
        })
    }

    /// Local-memory host read.
    pub fn peek_local(&self, group: usize, addr: usize) -> Result<Word, ExecError> {
        self.locals[group]
            .read(addr)
            .map_err(|e| self.host_err(e.into()))
    }

    /// Immutable access to a thread's state.
    pub fn thread(&self, group: usize, thread: usize) -> &ThreadState {
        &self.groups[group].threads[thread]
    }

    /// Mutable access to a thread's state (for host-side initialization in
    /// tests and examples).
    pub fn thread_mut(&mut self, group: usize, thread: usize) -> &mut ThreadState {
        &mut self.groups[group].threads[thread]
    }

    /// Host-side bunch configuration (the paper's "configured to a NUMA
    /// bunch"): threads `leader..leader+len` of `group` become one bunch.
    pub fn form_bunch(&mut self, group: usize, leader: usize, len: usize) -> Result<(), ExecError> {
        let step = self.steps;
        let gs = &mut self.groups[group];
        let bunch = Bunch::new(leader, len);
        let fail = |why: &str| ExecError {
            fault: Fault::BunchFormation { why: why.into() },
            step,
            group,
            thread: Some(leader),
        };
        if leader + len > gs.threads.len() {
            return Err(fail("members out of range"));
        }
        if gs.bunches.iter().any(|b| b.overlaps(&bunch)) {
            return Err(fail("overlaps an existing bunch"));
        }
        let pc = gs.threads[leader].pc;
        for t in bunch.members() {
            if !gs.threads[t].is_running() {
                return Err(fail("member not running"));
            }
            if gs.threads[t].pc != pc {
                return Err(fail("members not at a common pc"));
            }
        }
        for t in bunch.members().skip(1) {
            gs.threads[t].status = ThreadStatus::Bunched { leader };
        }
        gs.bunches.push(bunch);
        Ok(())
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Pipeline statistics so far.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Steps executed so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Whether any thread still has work.
    pub fn is_live(&self) -> bool {
        self.groups
            .iter()
            .any(|g| g.threads.iter().any(|t| t.is_running()))
    }

    fn host_err(&self, fault: Fault) -> ExecError {
        ExecError {
            fault,
            step: self.steps,
            group: 0,
            thread: None,
        }
    }

    fn err(&self, group: usize, thread: usize, fault: Fault) -> ExecError {
        ExecError {
            fault,
            step: self.steps,
            group,
            thread: Some(thread),
        }
    }

    fn special(&self, group: usize, thread: usize, sr: SpecialReg) -> Word {
        let tp = self.config.threads_per_group;
        let rank = (group * tp + thread) as Word;
        match sr {
            SpecialReg::Tid | SpecialReg::Gid | SpecialReg::Fid => rank,
            SpecialReg::Thickness => 1,
            SpecialReg::Pid => group as Word,
            SpecialReg::NProcs => self.config.groups as Word,
            SpecialReg::NThreads => tp as Word,
        }
    }

    /// Executes one synchronous machine step. Returns `false` when no
    /// thread had work (the machine is finished).
    pub fn step(&mut self) -> Result<bool, ExecError> {
        if !self.is_live() {
            return Ok(false);
        }
        let ngroups = self.groups.len();
        let mut pram_units: Vec<Vec<IssueUnit>> = vec![Vec::new(); ngroups];
        let mut bunch_units: Vec<Vec<IssueUnit>> = vec![Vec::new(); ngroups];
        let mut refs: Vec<MemRef> = Vec::new();
        let mut writebacks: Vec<Writeback> = Vec::new();

        // Phase 1: PRAM-mode issue, one instruction per running thread.
        #[allow(clippy::needless_range_loop)] // g also indexes self.groups
        for g in 0..ngroups {
            for t in 0..self.config.threads_per_group {
                match self.groups[g].threads[t].status {
                    ThreadStatus::Halted => pram_units[g].push(IssueUnit::idle()),
                    ThreadStatus::Bunched { .. } => {} // slot donated to the bunch
                    ThreadStatus::Running => {
                        if self.groups[g].bunches.iter().any(|b| b.leader == t) {
                            // Leaders execute their slice in phase 4.
                            continue;
                        }
                        let unit = self.issue_thread(g, t, &mut refs, &mut writebacks)?;
                        pram_units[g].push(unit);
                    }
                }
            }
        }

        // Phase 2: the shared-memory step.
        let (replies, mstats) = self
            .shared
            .step_with(&refs, &mut self.mem_scratch)
            .map_err(|e| self.host_err(e.into()))?;
        self.mem_stats.absorb(&mstats);

        // Phase 3: write-backs.
        for wb in writebacks {
            if let Some(v) = replies[wb.ref_idx] {
                self.groups[wb.group].threads[wb.thread].write_reg(wb.rd, v);
            }
        }

        // Phase 4: bunch slices (sequential streams, direct memory).
        for (g, units) in bunch_units.iter_mut().enumerate() {
            let bunches = self.groups[g].bunches.clone();
            for bunch in bunches {
                self.run_bunch_slice(g, bunch, units)?;
            }
        }

        // Phase 5: timing. All groups start the step together; the machine
        // clock advances to the slowest group's completion.
        let start = self.clock;
        let mut end = start;
        #[allow(clippy::needless_range_loop)] // parallel arrays indexed together
        for g in 0..ngroups {
            let out = self.pipes[g].run_step(
                start,
                &pram_units[g],
                false,
                &mut self.net,
                &mut self.trace,
                &mut self.stats,
            );
            let mut gend = out.end_cycle;
            if !bunch_units[g].is_empty() {
                let out2 = self.pipes[g].run_step(
                    gend,
                    &bunch_units[g],
                    true,
                    &mut self.net,
                    &mut self.trace,
                    &mut self.stats,
                );
                gend = out2.end_cycle;
            }
            end = end.max(gend);
        }
        self.clock = end;
        self.stats.cycles = end;
        self.steps += 1;
        // The machine owns the step counter (a step may span several
        // pipeline calls); mirror it into the stats snapshot.
        self.stats.steps = self.steps;
        Ok(true)
    }

    /// Runs until every thread halts or the step budget is exhausted.
    pub fn run(&mut self, max_steps: u64) -> Result<RunSummary, ExecError> {
        while self.is_live() {
            if self.steps >= max_steps {
                return Err(self.host_err(Fault::StepBudgetExhausted { budget: max_steps }));
            }
            self.step()?;
        }
        Ok(RunSummary {
            steps: self.steps,
            cycles: self.clock,
            halted: true,
            machine: self.stats,
            memory: self.mem_stats.clone(),
            network: self.net.stats().clone(),
        })
    }

    fn operand(&self, group: usize, thread: usize, o: Operand) -> Word {
        match o {
            Operand::Reg(r) => self.groups[group].threads[thread].read_reg(r),
            Operand::Imm(w) => w,
        }
    }

    fn target_abs(&self, group: usize, thread: usize, t: &Target) -> Result<usize, ExecError> {
        t.abs().ok_or_else(|| {
            self.err(
                group,
                thread,
                Fault::Malformed {
                    what: "unresolved target".into(),
                },
            )
        })
    }

    /// Issues one PRAM-mode instruction for thread `t` of group `g`.
    fn issue_thread(
        &mut self,
        g: usize,
        t: usize,
        refs: &mut Vec<MemRef>,
        writebacks: &mut Vec<Writeback>,
    ) -> Result<IssueUnit, ExecError> {
        let pc = self.groups[g].threads[t].pc;
        let instr = match self.program.fetch(pc) {
            Some(i) => i.clone(),
            None => return Err(self.err(g, t, Fault::PcOutOfRange { pc })),
        };
        self.stats.fetches += 1;
        let flow = (g * self.config.threads_per_group + t) as u32;
        let rank = g * self.config.threads_per_group + t;
        let origin = RefOrigin::new(g, rank);
        let mut next_pc = pc + 1;
        let mut unit = IssueUnit::compute(flow, t);

        match instr {
            Instr::Alu { op, rd, ra, rb } => {
                let a = self.groups[g].threads[t].read_reg(ra);
                let b = self.operand(g, t, rb);
                self.groups[g].threads[t].write_reg(rd, op.eval(a, b));
            }
            Instr::Ldi { rd, imm } => self.groups[g].threads[t].write_reg(rd, imm),
            Instr::Mfs { rd, sr } => {
                let v = self.special(g, t, sr);
                self.groups[g].threads[t].write_reg(rd, v);
            }
            Instr::Sel { rd, cond, rt, rf } => {
                let c = self.groups[g].threads[t].read_reg(cond);
                let v = if c != 0 {
                    self.groups[g].threads[t].read_reg(rt)
                } else {
                    self.operand(g, t, rf)
                };
                self.groups[g].threads[t].write_reg(rd, v);
            }
            Instr::Ld {
                rd,
                base,
                off,
                space,
            } => {
                let addr = to_addr(self.groups[g].threads[t].read_reg(base).wrapping_add(off));
                match space {
                    MemSpace::Shared => {
                        unit = IssueUnit::shared_mem(flow, t, self.shared.module_of(addr));
                        writebacks.push(Writeback {
                            group: g,
                            thread: t,
                            rd,
                            ref_idx: refs.len(),
                        });
                        refs.push(MemRef::new(origin, MemOp::Read(addr)));
                    }
                    MemSpace::Local => {
                        unit = IssueUnit::local_mem(flow, t);
                        let v = self.locals[g]
                            .read(addr)
                            .map_err(|e| self.err(g, t, e.into()))?;
                        self.groups[g].threads[t].write_reg(rd, v);
                    }
                }
            }
            Instr::St {
                rs,
                base,
                off,
                space,
            } => {
                let st = &self.groups[g].threads[t];
                let addr = to_addr(st.read_reg(base).wrapping_add(off));
                let v = st.read_reg(rs);
                match space {
                    MemSpace::Shared => {
                        unit = IssueUnit::shared_mem(flow, t, self.shared.module_of(addr));
                        refs.push(MemRef::new(origin, MemOp::Write(addr, v)));
                    }
                    MemSpace::Local => {
                        unit = IssueUnit::local_mem(flow, t);
                        self.locals[g]
                            .write(addr, v)
                            .map_err(|e| self.err(g, t, e.into()))?;
                    }
                }
            }
            Instr::StMasked {
                cond,
                rs,
                base,
                off,
                space,
            } => {
                let st = &self.groups[g].threads[t];
                let masked_in = st.read_reg(cond) != 0;
                let addr = to_addr(st.read_reg(base).wrapping_add(off));
                let v = st.read_reg(rs);
                if masked_in {
                    match space {
                        MemSpace::Shared => {
                            unit = IssueUnit::shared_mem(flow, t, self.shared.module_of(addr));
                            refs.push(MemRef::new(origin, MemOp::Write(addr, v)));
                        }
                        MemSpace::Local => {
                            unit = IssueUnit::local_mem(flow, t);
                            self.locals[g]
                                .write(addr, v)
                                .map_err(|e| self.err(g, t, e.into()))?;
                        }
                    }
                }
            }
            Instr::MultiOp {
                kind,
                base,
                off,
                rs,
            } => {
                let st = &self.groups[g].threads[t];
                let addr = to_addr(st.read_reg(base).wrapping_add(off));
                let v = st.read_reg(rs);
                unit = IssueUnit::shared_mem(flow, t, self.shared.module_of(addr));
                refs.push(MemRef::new(origin, MemOp::Multi(kind, addr, v)));
            }
            Instr::MultiPrefix {
                kind,
                rd,
                base,
                off,
                rs,
            } => {
                let st = &self.groups[g].threads[t];
                let addr = to_addr(st.read_reg(base).wrapping_add(off));
                let v = st.read_reg(rs);
                unit = IssueUnit::shared_mem(flow, t, self.shared.module_of(addr));
                writebacks.push(Writeback {
                    group: g,
                    thread: t,
                    rd,
                    ref_idx: refs.len(),
                });
                refs.push(MemRef::new(origin, MemOp::Prefix(kind, addr, v)));
            }
            Instr::Jmp { ref target } => next_pc = self.target_abs(g, t, target)?,
            Instr::Br {
                cond,
                rs,
                ref target,
            } => {
                if cond.holds(self.groups[g].threads[t].read_reg(rs)) {
                    next_pc = self.target_abs(g, t, target)?;
                }
            }
            Instr::Call { ref target } => {
                let dst = self.target_abs(g, t, target)?;
                self.groups[g].threads[t].call_stack.push(pc + 1);
                next_pc = dst;
            }
            Instr::Ret => match self.groups[g].threads[t].call_stack.pop() {
                Some(ra) => next_pc = ra,
                None => return Err(self.err(g, t, Fault::EmptyCallStack)),
            },
            Instr::Numa { slots } => {
                let len = self.operand(g, t, slots).max(1) as usize;
                self.form_bunch(g, t, len)?;
                unit = IssueUnit::overhead(flow);
            }
            Instr::EndNuma => return Err(self.err(g, t, Fault::NotInBunch)),
            Instr::Sync | Instr::Nop => {}
            Instr::Halt => {
                self.groups[g].threads[t].status = ThreadStatus::Halted;
            }
            Instr::SetThick { .. }
            | Instr::Split { .. }
            | Instr::Join
            | Instr::Spawn { .. }
            | Instr::SJoin => {
                return Err(self.err(
                    g,
                    t,
                    Fault::Unsupported {
                        instr: instr.to_string(),
                    },
                ))
            }
        }

        self.groups[g].threads[t].pc = next_pc;
        Ok(unit)
    }

    /// Executes one bunch's slice: up to `len` consecutive instructions of
    /// the leader's stream with direct memory access.
    fn run_bunch_slice(
        &mut self,
        g: usize,
        bunch: Bunch,
        units: &mut Vec<IssueUnit>,
    ) -> Result<(), ExecError> {
        let leader = bunch.leader;
        if !self.groups[g].threads[leader].is_running() {
            return Ok(());
        }
        let flow = (g * self.config.threads_per_group + leader) as u32;

        for _ in 0..bunch.len {
            let pc = self.groups[g].threads[leader].pc;
            let instr = match self.program.fetch(pc) {
                Some(i) => i.clone(),
                None => return Err(self.err(g, leader, Fault::PcOutOfRange { pc })),
            };
            self.stats.fetches += 1;
            let mut next_pc = pc + 1;
            let mut unit = IssueUnit::compute(flow, leader);

            match instr {
                Instr::Alu { op, rd, ra, rb } => {
                    let a = self.groups[g].threads[leader].read_reg(ra);
                    let b = self.operand(g, leader, rb);
                    self.groups[g].threads[leader].write_reg(rd, op.eval(a, b));
                }
                Instr::Ldi { rd, imm } => self.groups[g].threads[leader].write_reg(rd, imm),
                Instr::Mfs { rd, sr } => {
                    let v = self.special(g, leader, sr);
                    self.groups[g].threads[leader].write_reg(rd, v);
                }
                Instr::Sel { rd, cond, rt, rf } => {
                    let c = self.groups[g].threads[leader].read_reg(cond);
                    let v = if c != 0 {
                        self.groups[g].threads[leader].read_reg(rt)
                    } else {
                        self.operand(g, leader, rf)
                    };
                    self.groups[g].threads[leader].write_reg(rd, v);
                }
                Instr::Ld {
                    rd,
                    base,
                    off,
                    space,
                } => {
                    let addr = to_addr(
                        self.groups[g].threads[leader]
                            .read_reg(base)
                            .wrapping_add(off),
                    );
                    let v = match space {
                        MemSpace::Shared => {
                            unit = IssueUnit::shared_mem(flow, leader, self.shared.module_of(addr));
                            self.shared
                                .peek(addr)
                                .map_err(|e| self.err(g, leader, e.into()))?
                        }
                        MemSpace::Local => {
                            unit = IssueUnit::local_mem(flow, leader);
                            self.locals[g]
                                .read(addr)
                                .map_err(|e| self.err(g, leader, e.into()))?
                        }
                    };
                    self.groups[g].threads[leader].write_reg(rd, v);
                }
                Instr::St {
                    rs,
                    base,
                    off,
                    space,
                }
                | Instr::StMasked {
                    rs,
                    base,
                    off,
                    space,
                    ..
                } => {
                    let masked_out = matches!(instr, Instr::StMasked { cond, .. }
                        if self.groups[g].threads[leader].read_reg(cond) == 0);
                    let st = &self.groups[g].threads[leader];
                    let addr = to_addr(st.read_reg(base).wrapping_add(off));
                    let v = st.read_reg(rs);
                    if !masked_out {
                        match space {
                            MemSpace::Shared => {
                                unit = IssueUnit::shared_mem(
                                    flow,
                                    leader,
                                    self.shared.module_of(addr),
                                );
                                self.shared
                                    .poke(addr, v)
                                    .map_err(|e| self.err(g, leader, e.into()))?;
                            }
                            MemSpace::Local => {
                                unit = IssueUnit::local_mem(flow, leader);
                                self.locals[g]
                                    .write(addr, v)
                                    .map_err(|e| self.err(g, leader, e.into()))?;
                            }
                        }
                    }
                }
                Instr::MultiOp {
                    kind,
                    base,
                    off,
                    rs,
                }
                | Instr::MultiPrefix {
                    kind,
                    base,
                    off,
                    rs,
                    ..
                } => {
                    // Sequential stream: a multioperation degenerates to a
                    // read-modify-write; a multiprefix additionally returns
                    // the old value.
                    let st = &self.groups[g].threads[leader];
                    let addr = to_addr(st.read_reg(base).wrapping_add(off));
                    let v = st.read_reg(rs);
                    unit = IssueUnit::shared_mem(flow, leader, self.shared.module_of(addr));
                    let old = self
                        .shared
                        .peek(addr)
                        .map_err(|e| self.err(g, leader, e.into()))?;
                    self.shared
                        .poke(addr, kind.combine(old, v))
                        .map_err(|e| self.err(g, leader, e.into()))?;
                    if let Instr::MultiPrefix { rd, .. } = instr {
                        self.groups[g].threads[leader].write_reg(rd, old);
                    }
                }
                Instr::Jmp { ref target } => next_pc = self.target_abs(g, leader, target)?,
                Instr::Br {
                    cond,
                    rs,
                    ref target,
                } => {
                    if cond.holds(self.groups[g].threads[leader].read_reg(rs)) {
                        next_pc = self.target_abs(g, leader, target)?;
                    }
                }
                Instr::Call { ref target } => {
                    let dst = self.target_abs(g, leader, target)?;
                    self.groups[g].threads[leader].call_stack.push(pc + 1);
                    next_pc = dst;
                }
                Instr::Ret => match self.groups[g].threads[leader].call_stack.pop() {
                    Some(ra) => next_pc = ra,
                    None => return Err(self.err(g, leader, Fault::EmptyCallStack)),
                },
                Instr::EndNuma => {
                    // Dissolve: all members share the bunch's final state.
                    self.dissolve_bunch(g, bunch, pc + 1);
                    units.push(IssueUnit::overhead(flow));
                    return Ok(());
                }
                Instr::Halt => {
                    for t in bunch.members() {
                        self.groups[g].threads[t].status = ThreadStatus::Halted;
                    }
                    self.groups[g].bunches.retain(|b| b.leader != bunch.leader);
                    units.push(unit);
                    return Ok(());
                }
                Instr::Numa { .. } => {
                    return Err(self.err(
                        g,
                        leader,
                        Fault::BunchFormation {
                            why: "nested numa inside a bunch".into(),
                        },
                    ))
                }
                Instr::Sync | Instr::Nop => {}
                Instr::SetThick { .. }
                | Instr::Split { .. }
                | Instr::Join
                | Instr::Spawn { .. }
                | Instr::SJoin => {
                    return Err(self.err(
                        g,
                        leader,
                        Fault::Unsupported {
                            instr: instr.to_string(),
                        },
                    ))
                }
            }

            self.groups[g].threads[leader].pc = next_pc;
            units.push(unit);
        }
        Ok(())
    }

    fn dissolve_bunch(&mut self, g: usize, bunch: Bunch, resume_pc: usize) {
        let leader_state = {
            let l = &mut self.groups[g].threads[bunch.leader];
            l.pc = resume_pc;
            l.clone()
        };
        for t in bunch.members().skip(1) {
            let member = &mut self.groups[g].threads[t];
            *member = leader_state.clone();
            member.status = ThreadStatus::Running;
        }
        self.groups[g].bunches.retain(|b| b.leader != bunch.leader);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_isa::asm::assemble;

    fn small() -> MachineConfig {
        MachineConfig::small()
    }

    fn machine(src: &str) -> PramMachine {
        PramMachine::new(small(), assemble(src).unwrap())
    }

    #[test]
    fn all_threads_run_spmd() {
        // Every thread writes its global rank to mem[1000 + rank].
        let mut m = machine(
            "main:
                mfs r1, gid
                ldi r2, 1000
                add r3, r2, r1
                st r1, [r3+0]
                halt
            ",
        );
        let s = m.run(100).unwrap();
        assert_eq!(s.steps, 5);
        let total = small().total_threads();
        let vals = m.peek_range(1000, total).unwrap();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, i as Word);
        }
    }

    #[test]
    fn thread_loop_covers_oversized_array() {
        // for (i = thread_id; i < 256; i += nthreads) c[i] = i * 2
        let mut m = machine(
            "main:
                mfs r1, gid          ; i = thread_id
                mfs r2, nprocs
                mfs r3, nthreads
                mul r2, r2, r3       ; total threads = 64
            loop:
                slt r4, r1, 256
                beqz r4, done
                shl r5, r1, 1        ; i * 2
                ldi r6, 2000
                add r6, r6, r1
                st r5, [r6+0]
                add r1, r1, r2
                jmp loop
            done:
                halt
            ",
        );
        m.run(1000).unwrap();
        let vals = m.peek_range(2000, 256).unwrap();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, 2 * i as Word, "element {i}");
        }
    }

    #[test]
    fn multiprefix_sums_across_machine() {
        let mut m = machine(
            "main:
                ldi r1, 1
                mpadd r2, [r0+500], r1   ; every thread adds 1
                mfs r3, gid
                ldi r4, 600
                add r4, r4, r3
                st r2, [r4+0]            ; store my prefix
                halt
            ",
        );
        m.run(100).unwrap();
        let total = small().total_threads();
        assert_eq!(m.peek(500).unwrap(), total as Word);
        let prefixes = m.peek_range(600, total).unwrap();
        for (rank, p) in prefixes.iter().enumerate() {
            assert_eq!(*p, rank as Word, "prefix of rank {rank}");
        }
    }

    #[test]
    fn concurrent_write_resolution_is_policy_driven() {
        let mut m = machine(
            "main:
                mfs r1, gid
                st r1, [r0+50]
                halt
            ",
        );
        m.run(100).unwrap();
        // Arbitrary policy: highest rank wins.
        assert_eq!(m.peek(50).unwrap(), (small().total_threads() - 1) as Word);
    }

    #[test]
    fn call_and_ret_per_thread() {
        let mut m = machine(
            "main:
                ldi r1, 5
                call double
                st r1, [r0+70]
                halt
            double:
                shl r1, r1, 1
                ret
            ",
        );
        m.run(100).unwrap();
        assert_eq!(m.peek(70).unwrap(), 10);
    }

    #[test]
    fn numa_bunch_runs_sequentially_faster() {
        // SPMD `numa 4` partitions each group's 16 threads into 4 bunches
        // of 4; every bunch counts to 40 sequentially, then dissolves.
        let src = |bunch: bool| {
            format!(
                "main:
                    {numa}
                    ldi r4, 0
                loop:
                    add r4, r4, 1
                    slt r5, r4, 40
                    bnez r5, loop
                    {endnuma}
                    mfs r1, gid
                    mfs r2, nthreads
                    mod r3, r1, r2
                    bnez r3, out
                    mfs r6, pid
                    ldi r7, 300
                    add r7, r7, r6
                    st r4, [r7+0]
                    halt
                out:
                    halt
                ",
                numa = if bunch { "numa 4" } else { "nop" },
                endnuma = if bunch { "endnuma" } else { "nop" },
            )
        };
        let mut with = machine(&src(true));
        let s_with = with.run(1000).unwrap();
        for g in 0..small().groups {
            assert_eq!(with.peek(300 + g).unwrap(), 40);
        }
        let mut without = machine(&src(false));
        let s_without = without.run(1000).unwrap();
        // The 120-instruction sequential loop takes ~120 steps on plain
        // threads but ~30 bunch slices in 4-thread bunches.
        assert!(
            s_with.steps * 3 < s_without.steps,
            "bunching gave no speedup: {} vs {} steps",
            s_with.steps,
            s_without.steps
        );
    }

    #[test]
    fn bunch_dissolve_shares_state() {
        // Inside the bunch only the leader's stream runs; it captures the
        // leader's gid in r2. After `endnuma` every member continues with a
        // copy of that shared state, so member slots store the *leader's*
        // gid, not their own.
        let mut m = machine(
            "main:
                numa 4
                mfs r2, gid          ; leader's rank, captured in the bunch
                endnuma
                mfs r3, gid          ; threads diverge again after endnuma
                ldi r4, 400
                add r4, r4, r3
                st r2, [r4+0]
                halt
            ",
        );
        m.run(200).unwrap();
        let total = small().total_threads();
        let vals = m.peek_range(400, total).unwrap();
        for (rank, v) in vals.iter().enumerate() {
            let leader_rank = (rank / 4) * 4;
            assert_eq!(*v, leader_rank as Word, "thread {rank}");
        }
    }

    #[test]
    fn unsupported_tcf_instructions_fault() {
        let mut m = machine("main:\n setthick 4\n halt\n");
        let e = m.run(10).unwrap_err();
        assert!(matches!(e.fault, Fault::Unsupported { .. }));
    }

    #[test]
    fn endnuma_outside_bunch_faults() {
        let mut m = machine("main:\n endnuma\n halt\n");
        let e = m.run(10).unwrap_err();
        assert!(matches!(e.fault, Fault::NotInBunch));
    }

    #[test]
    fn runaway_program_hits_budget() {
        let mut m = machine("main:\n jmp main\n");
        let e = m.run(50).unwrap_err();
        assert!(matches!(e.fault, Fault::StepBudgetExhausted { budget: 50 }));
    }

    #[test]
    fn falling_off_program_faults() {
        let mut m = machine("main:\n nop\n");
        let e = m.run(10).unwrap_err();
        assert!(matches!(e.fault, Fault::PcOutOfRange { .. }));
    }

    #[test]
    fn masked_store_only_writes_selected_threads() {
        let mut m = machine(
            "main:
                mfs r1, gid
                slt r2, r1, 4        ; threads 0..3 selected
                ldi r3, 800
                add r3, r3, r1
                ldi r4, 9
                stm r2, r4, [r3+0]
                halt
            ",
        );
        m.run(100).unwrap();
        let vals = m.peek_range(800, 8).unwrap();
        assert_eq!(vals, vec![9, 9, 9, 9, 0, 0, 0, 0]);
    }

    #[test]
    fn local_memory_is_per_group() {
        let mut m = machine(
            "main:
                mfs r1, gid
                mfs r2, nthreads
                mod r3, r1, r2
                bnez r3, done        ; one thread per group
                mfs r4, pid
                stl r4, [r0+5]       ; local mem of own group
                ldl r5, [r0+5]
                ldi r6, 900
                add r6, r6, r4
                st r5, [r6+0]
                halt
            done:
                halt
            ",
        );
        m.run(100).unwrap();
        for g in 0..small().groups {
            assert_eq!(m.peek(900 + g).unwrap(), g as Word);
            assert_eq!(m.peek_local(g, 5).unwrap(), g as Word);
        }
    }

    #[test]
    fn low_tlp_burns_idle_slots() {
        // One live thread per group: utilization collapses towards 1/T_p.
        let mut m = machine(
            "main:
                mfs r1, gid
                mfs r2, nthreads
                mod r3, r1, r2
                bnez r3, done
                ldi r4, 100
            loop:
                sub r4, r4, 1
                bnez r4, loop
                halt
            done:
                halt
            ",
        );
        let s = m.run(10_000).unwrap();
        // One live thread in a 16-slot rotation: utilization collapses to
        // the order of 1/T_p (fetch accounting doubles the issued-work
        // count, hence the threshold of 0.2 rather than 1/16).
        assert!(
            s.machine.utilization() < 0.2,
            "expected slot-rotation collapse, got {}",
            s.machine.utilization()
        );
    }
}
