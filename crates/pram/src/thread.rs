//! Per-thread architectural state.

use serde::{Deserialize, Serialize};

use tcf_isa::reg::Reg;
use tcf_isa::word::Word;

/// Scheduling status of a hardware thread slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadStatus {
    /// Executing one instruction per step (PRAM mode).
    Running,
    /// Donating its slot to a NUMA bunch led by the given thread index.
    Bunched {
        /// Leader thread index within the group.
        leader: usize,
    },
    /// Executed `halt`.
    Halted,
}

/// One hardware thread's architectural state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadState {
    /// Program counter.
    pub pc: usize,
    /// General registers (`regs[0]` stays 0 by construction of
    /// [`write_reg`](ThreadState::write_reg)).
    pub regs: Vec<Word>,
    /// Flow-wise call stack (return addresses).
    pub call_stack: Vec<usize>,
    /// Scheduling status.
    pub status: ThreadStatus,
}

impl ThreadState {
    /// A fresh thread at `entry` with `nregs` zeroed registers.
    pub fn new(entry: usize, nregs: usize) -> ThreadState {
        ThreadState {
            pc: entry,
            regs: vec![0; nregs],
            call_stack: Vec::new(),
            status: ThreadStatus::Running,
        }
    }

    /// Reads a register (`r0` is always 0).
    #[inline]
    pub fn read_reg(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    /// Writes a register; writes to `r0` are discarded.
    #[inline]
    pub fn write_reg(&mut self, r: Reg, v: Word) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Whether the thread still schedules work.
    #[inline]
    pub fn is_running(&self) -> bool {
        self.status == ThreadStatus::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_isa::reg::r;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut t = ThreadState::new(0, 8);
        t.write_reg(r(0), 99);
        assert_eq!(t.read_reg(r(0)), 0);
        t.write_reg(r(3), 42);
        assert_eq!(t.read_reg(r(3)), 42);
    }

    #[test]
    fn fresh_thread_runs_at_entry() {
        let t = ThreadState::new(7, 4);
        assert_eq!(t.pc, 7);
        assert!(t.is_running());
        assert!(t.call_stack.is_empty());
    }
}
