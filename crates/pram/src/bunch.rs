//! NUMA bunches: groups of threads configured to execute as one.
//!
//! §2.1 of the paper: *"two or more processors belonging to a group can be
//! configured to a NUMA bunch so that they execute a common instruction
//! stream and share their state with each other, i.e. execute code like a
//! single processor."* A bunch of `len` threads executes `len` consecutive
//! instructions of the leader's stream per synchronous step, recovering
//! sequential performance proportional to its size in low-TLP code.

use serde::{Deserialize, Serialize};

/// One configured bunch within a processor group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bunch {
    /// Leader thread index within the group; the leader's registers and pc
    /// are the bunch's architectural state.
    pub leader: usize,
    /// Number of member threads, leader included (`thickness 1/len` in the
    /// extended model's terminology).
    pub len: usize,
}

impl Bunch {
    /// Creates a bunch; `len` must be at least 1.
    pub fn new(leader: usize, len: usize) -> Bunch {
        assert!(len >= 1, "a bunch needs at least one member");
        Bunch { leader, len }
    }

    /// Thread indices covered by the bunch (leader first).
    pub fn members(&self) -> impl Iterator<Item = usize> {
        self.leader..self.leader + self.len
    }

    /// Whether `thread` belongs to this bunch.
    pub fn contains(&self, thread: usize) -> bool {
        (self.leader..self.leader + self.len).contains(&thread)
    }

    /// Whether this bunch overlaps another.
    pub fn overlaps(&self, other: &Bunch) -> bool {
        self.leader < other.leader + other.len && other.leader < self.leader + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let b = Bunch::new(4, 3);
        assert!(b.contains(4));
        assert!(b.contains(6));
        assert!(!b.contains(7));
        assert_eq!(b.members().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn overlap_detection() {
        let a = Bunch::new(0, 4);
        assert!(a.overlaps(&Bunch::new(3, 2)));
        assert!(!a.overlaps(&Bunch::new(4, 2)));
        assert!(Bunch::new(2, 1).overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_len_panics() {
        Bunch::new(0, 0);
    }
}
