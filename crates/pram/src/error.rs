//! Execution faults of the baseline runtime.

use core::fmt;

use tcf_mem::MemError;

/// What went wrong inside one thread/bunch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A memory access faulted.
    Mem(MemError),
    /// The program counter left the program without halting.
    PcOutOfRange {
        /// The bad pc.
        pc: usize,
    },
    /// `ret` with an empty call stack.
    EmptyCallStack,
    /// An instruction this model does not support (TCF control in the
    /// baseline, e.g. `setthick`/`split`).
    Unsupported {
        /// Rendered instruction.
        instr: String,
    },
    /// A register operand was needed but an unresolved target/operand was
    /// malformed (defensive; should be unreachable with validated
    /// programs).
    Malformed {
        /// Description.
        what: String,
    },
    /// Bunch formation failed: members not at the `numa` instruction, out
    /// of range, or overlapping an existing bunch.
    BunchFormation {
        /// Description.
        why: String,
    },
    /// `endnuma` executed outside a bunch.
    NotInBunch,
    /// The run exceeded the step budget without halting.
    StepBudgetExhausted {
        /// Budget that was exhausted.
        budget: u64,
    },
}

impl From<MemError> for Fault {
    fn from(e: MemError) -> Fault {
        Fault::Mem(e)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(e) => write!(f, "memory fault: {e}"),
            Fault::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            Fault::EmptyCallStack => f.write_str("ret with empty call stack"),
            Fault::Unsupported { instr } => {
                write!(f, "instruction `{instr}` unsupported by this model")
            }
            Fault::Malformed { what } => write!(f, "malformed instruction: {what}"),
            Fault::BunchFormation { why } => write!(f, "bunch formation failed: {why}"),
            Fault::NotInBunch => f.write_str("endnuma outside a NUMA bunch"),
            Fault::StepBudgetExhausted { budget } => {
                write!(f, "program did not halt within {budget} steps")
            }
        }
    }
}

/// A fault with machine context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The fault.
    pub fault: Fault,
    /// Machine step at which it occurred.
    pub step: u64,
    /// Processor group.
    pub group: usize,
    /// Thread index within the group (leader for bunches), when known.
    pub thread: Option<usize>,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {}, group {}", self.step, self.group)?;
        if let Some(t) = self.thread {
            write!(f, ", thread {t}")?;
        }
        write!(f, ": {}", self.fault)
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ExecError {
            fault: Fault::EmptyCallStack,
            step: 12,
            group: 3,
            thread: Some(7),
        };
        let s = e.to_string();
        assert!(s.contains("step 12"));
        assert!(s.contains("group 3"));
        assert!(s.contains("thread 7"));
        assert!(s.contains("call stack"));
    }

    #[test]
    fn mem_error_converts() {
        let f: Fault = MemError::OutOfBounds { addr: 9, size: 4 }.into();
        assert!(matches!(f, Fault::Mem(_)));
    }
}
