//! Run results.

use serde::{Deserialize, Serialize};

use tcf_machine::MachineStats;
use tcf_mem::StepStats;
use tcf_net::NetStats;
use tcf_obs::MetricsRegistry;

/// Outcome of running a program to completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Synchronous steps executed.
    pub steps: u64,
    /// Machine cycles elapsed (the makespan over groups).
    pub cycles: u64,
    /// Whether every thread/flow halted (as opposed to hitting the step
    /// budget — which is reported as an error, so this is always true for
    /// successful runs; kept for serialized records).
    pub halted: bool,
    /// Aggregated pipeline statistics over all groups.
    pub machine: MachineStats,
    /// Aggregated shared-memory statistics.
    pub memory: StepStats,
    /// Network statistics.
    pub network: NetStats,
}

impl RunSummary {
    /// Instructions (issued units) per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.machine.issued() as f64 / self.cycles as f64
        }
    }

    /// All of the run's measurements as one named-series registry —
    /// machine, memory and network counters, derived gauges, and latency
    /// histograms — instead of reading three stats structs by hand. See
    /// `docs/OBSERVABILITY.md` for the naming scheme.
    pub fn metrics(&self) -> MetricsRegistry {
        summary_metrics(&self.machine, &self.memory, &self.network)
    }
}

/// Builds the unified registry from the three per-subsystem counter
/// structs. Shared by [`RunSummary::metrics`] and the extended machine's
/// live `metrics()` accessor (which adds the TCF-buffer series on top).
pub fn summary_metrics(
    machine: &MachineStats,
    memory: &StepStats,
    network: &NetStats,
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();

    reg.set_counter("machine.steps", machine.steps);
    reg.set_counter("machine.cycles", machine.cycles);
    reg.set_counter("machine.compute_ops", machine.compute_ops);
    reg.set_counter("machine.shared_refs", machine.shared_refs);
    reg.set_counter("machine.local_refs", machine.local_refs);
    reg.set_counter("machine.fetches", machine.fetches);
    reg.set_counter("machine.bubbles", machine.bubbles);
    reg.set_counter("machine.overhead_cycles", machine.overhead_cycles);
    reg.set_counter("machine.spill_refs", machine.spill_refs);
    reg.set_gauge("machine.utilization", machine.utilization());
    let ipc = if machine.cycles == 0 {
        0.0
    } else {
        machine.issued() as f64 / machine.cycles as f64
    };
    reg.set_gauge("machine.ipc", ipc);
    reg.set_histogram("machine.mem_roundtrip", machine.mem_roundtrip);

    reg.set_counter("mem.refs", memory.refs as u64);
    reg.set_counter("mem.hot_addrs", memory.hot_addrs as u64);
    reg.set_counter("mem.combined", memory.combined as u64);
    reg.set_counter("mem.max_module_load", memory.max_module_load() as u64);
    reg.set_gauge("mem.imbalance", memory.imbalance());
    reg.set_histogram("mem.module_load", memory.load_hist);

    reg.set_counter("net.messages", network.messages as u64);
    reg.set_counter("net.hops", network.hops as u64);
    reg.set_counter("net.queue_cycles", network.queue_cycles);
    reg.set_counter("net.max_queue_cycles", network.max_queue_cycles);
    reg.set_counter("net.local_deliveries", network.local_deliveries as u64);
    reg.set_counter("net.route_sends", network.route_sends as u64);
    reg.set_gauge("net.mean_hops", network.mean_hops());
    reg.set_gauge("net.mean_queue_cycles", network.mean_queue_cycles());
    reg.set_histogram("net.queue", network.queue);

    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = RunSummary {
            steps: 0,
            cycles: 0,
            halted: true,
            machine: MachineStats::default(),
            memory: StepStats::default(),
            network: NetStats::default(),
        };
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn metrics_mirror_the_stats_structs() {
        let machine = MachineStats {
            steps: 3,
            cycles: 30,
            compute_ops: 12,
            shared_refs: 6,
            bubbles: 9,
            ..Default::default()
        };
        let mut memory = StepStats::new(2);
        memory.refs = 6;
        memory.per_module = vec![4, 2];
        let network = NetStats {
            messages: 6,
            hops: 12,
            queue_cycles: 3,
            ..Default::default()
        };
        let s = RunSummary {
            steps: 3,
            cycles: 30,
            halted: true,
            machine,
            memory,
            network,
        };
        let reg = s.metrics();
        assert_eq!(reg.counter("machine.compute_ops"), Some(12));
        assert_eq!(reg.counter("machine.cycles"), Some(30));
        assert_eq!(reg.counter("mem.refs"), Some(6));
        assert_eq!(reg.counter("mem.max_module_load"), Some(4));
        assert_eq!(reg.counter("net.messages"), Some(6));
        assert!((reg.gauge("machine.ipc").unwrap() - 0.6).abs() < 1e-9);
        assert!((reg.gauge("machine.utilization").unwrap() - 18.0 / 27.0).abs() < 1e-9);
        assert!(reg.histogram("net.queue").is_some());
    }
}
