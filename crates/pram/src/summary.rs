//! Run results.

use serde::{Deserialize, Serialize};

use tcf_machine::MachineStats;
use tcf_net::NetStats;
use tcf_mem::StepStats;

/// Outcome of running a program to completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Synchronous steps executed.
    pub steps: u64,
    /// Machine cycles elapsed (the makespan over groups).
    pub cycles: u64,
    /// Whether every thread/flow halted (as opposed to hitting the step
    /// budget — which is reported as an error, so this is always true for
    /// successful runs; kept for serialized records).
    pub halted: bool,
    /// Aggregated pipeline statistics over all groups.
    pub machine: MachineStats,
    /// Aggregated shared-memory statistics.
    pub memory: StepStats,
    /// Network statistics.
    pub network: NetStats,
}

impl RunSummary {
    /// Instructions (issued units) per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.machine.issued() as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = RunSummary {
            steps: 0,
            cycles: 0,
            halted: true,
            machine: MachineStats::default(),
            memory: StepStats::default(),
            network: NetStats::default(),
        };
        assert_eq!(s.ipc(), 0.0);
    }
}
