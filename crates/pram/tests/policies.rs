//! Baseline-machine tests of the configurable PRAM submodels (CRCW
//! policies) and fault paths reaching the machine level.

use tcf_isa::asm::assemble;
use tcf_machine::MachineConfig;
use tcf_mem::CrcwPolicy;
use tcf_pram::{ExecError, Fault, PramMachine};

fn machine_with(policy: CrcwPolicy, src: &str) -> PramMachine {
    let mut config = MachineConfig::small();
    config.crcw = policy;
    PramMachine::new(config, assemble(src).unwrap())
}

const ALL_WRITE: &str = "main:
        mfs r1, gid
        st r1, [r0+7]
        halt
    ";

#[test]
fn priority_policy_lowest_rank_wins() {
    let mut m = machine_with(CrcwPolicy::Priority, ALL_WRITE);
    m.run(100).unwrap();
    assert_eq!(m.peek(7).unwrap(), 0);
}

#[test]
fn arbitrary_policy_highest_rank_wins() {
    let mut m = machine_with(CrcwPolicy::Arbitrary, ALL_WRITE);
    m.run(100).unwrap();
    assert_eq!(m.peek(7).unwrap(), 63);
}

#[test]
fn common_policy_faults_on_disagreement() {
    let mut m = machine_with(CrcwPolicy::Common, ALL_WRITE);
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, Fault::Mem(_)), "unexpected: {e}");
}

#[test]
fn common_policy_accepts_agreement() {
    let mut m = machine_with(
        CrcwPolicy::Common,
        "main:
            ldi r1, 5
            st r1, [r0+7]        ; everyone writes the same value
            halt
        ",
    );
    m.run(100).unwrap();
    assert_eq!(m.peek(7).unwrap(), 5);
}

#[test]
fn erew_faults_on_concurrent_reads() {
    let mut m = machine_with(
        CrcwPolicy::Erew,
        "main:
            ld r1, [r0+3]        ; every thread reads address 3
            halt
        ",
    );
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, Fault::Mem(_)));
}

#[test]
fn erew_allows_disjoint_access() {
    let mut m = machine_with(
        CrcwPolicy::Erew,
        "main:
            mfs r1, gid
            ldi r2, 100
            add r2, r2, r1
            st r1, [r2+0]        ; one address per thread
            halt
        ",
    );
    m.run(100).unwrap();
    assert_eq!(m.peek(100 + 17).unwrap(), 17);
}

#[test]
fn crew_allows_concurrent_reads_rejects_writes() {
    let mut m = machine_with(
        CrcwPolicy::Crew,
        "main:
            ld r1, [r0+3]
            halt
        ",
    );
    m.run(100).unwrap();
    let mut m = machine_with(CrcwPolicy::Crew, ALL_WRITE);
    assert!(m.run(100).is_err());
}

#[test]
fn error_context_names_the_step() {
    let mut m = machine_with(CrcwPolicy::Common, ALL_WRITE);
    let ExecError { step, .. } = m.run(100).unwrap_err();
    assert_eq!(step, 1); // the store is the second instruction (step index 1)
}

#[test]
fn baseline_trace_exports() {
    let mut m = machine_with(
        CrcwPolicy::Arbitrary,
        "main:
            mfs r1, gid
            ld r2, [r1+100]
            halt
        ",
    );
    m.set_tracing(true);
    m.run(100).unwrap();
    let csv = m.trace().to_csv();
    assert!(csv.contains("shared"));
    assert!(m.trace().gantt(0).contains("flow"));
}

#[test]
fn multiops_exempt_from_exclusivity_in_machine() {
    // All 64 threads combine into one address under EREW: legal, because
    // multioperations are combining by construction.
    let mut m = machine_with(
        CrcwPolicy::Erew,
        "main:
            ldi r1, 1
            madd [r0+11], r1
            halt
        ",
    );
    m.run(100).unwrap();
    assert_eq!(m.peek(11).unwrap(), 64);
}
