//! A data-parallel 3x3 box filter over an image, thickness = pixel count.
//!
//! Demonstrates the TCF style on a 2-D workload: the flow's thickness is
//! the number of interior pixels, per-thread index arithmetic recovers
//! (row, col), and there is no loop over pixels anywhere in the guest
//! program. The host verifies against a reference implementation.
//!
//! ```sh
//! cargo run --example image_filter
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

const W: usize = 32;
const H: usize = 24;
const SRC: usize = 10_000;
const DST: usize = 20_000;

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    // Interior pixels only (no border handling in the guest, to keep the
    // program readable).
    let inner_w = W - 2;
    let inner_h = H - 2;
    let n = inner_w * inner_h;

    let source = format!(
        "shared int src[{npix}] @ {SRC};
         shared int dst[{npix}] @ {DST};
         void main() {{
             #{n};
             int row = . / {inner_w} + 1;
             int col = . % {inner_w} + 1;
             int p = row * {W} + col;
             dst[p] = (src[p - {W} - 1] + src[p - {W}] + src[p - {W} + 1]
                     + src[p - 1]       + src[p]       + src[p + 1]
                     + src[p + {W} - 1] + src[p + {W}] + src[p + {W} + 1]) / 9;
         }}",
        npix = W * H,
    );
    let program = tcf::lang::compile(&source).expect("program compiles");
    let mut machine = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);

    // A deterministic pseudo-image.
    let pixel = |x: usize, y: usize| ((x * 7 + y * 13) % 256) as i64;
    for y in 0..H {
        for x in 0..W {
            machine.poke(SRC + y * W + x, pixel(x, y)).unwrap();
        }
    }

    let summary = machine.run(1_000_000).expect("program halts");

    // Reference filter on the host.
    let mut checked = 0;
    for y in 1..H - 1 {
        for x in 1..W - 1 {
            let mut sum = 0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    sum += pixel((x as i64 + dx) as usize, (y as i64 + dy) as usize);
                }
            }
            let expect = sum / 9;
            let got = machine.peek(DST + y * W + x).unwrap();
            assert_eq!(got, expect, "pixel ({x},{y})");
            checked += 1;
        }
    }
    println!("3x3 box filter over {W}x{H}: {checked} interior pixels verified");
    println!(
        "  thickness {n}, steps {}, cycles {}, utilization {:.2}",
        summary.steps,
        summary.cycles,
        summary.machine.utilization()
    );
}

#[allow(dead_code)]
fn main() {
    run();
}
