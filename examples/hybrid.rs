//! Dual-mode execution: one program alternating NUMA sequential phases
//! and thick parallel phases (the direction §5 sketches for REPLICA).
//!
//! Phase 1 (NUMA): a sequential generator fills the input — inherently
//! serial recurrence, so it runs as a bunch of 16 consecutive
//! instructions per step. Phase 2 (thick): a 3-point smoothing filter at
//! thickness = n. Phase 3 (NUMA): a sequential checksum. The point: the
//! *same flow* moves between modes with two instructions, no task
//! hand-off, no second program.
//!
//! ```sh
//! cargo run --example hybrid
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

const N: usize = 256;
const DATA: usize = 10_000;
const SMOOTH: usize = 20_000;
const CHECK: usize = 80;

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    let source = format!(
        "shared int data[{N}] @ {DATA};
         shared int smooth[{N}] @ {SMOOTH};
         shared int check @ {CHECK};
         void main() {{
             // Phase 1 - NUMA: sequential recurrence x[i] = (x[i-1]*5 + 7) % 4093.
             numa (16) {{
                 int x = 1;
                 int i = 0;
                 while (i < {N}) {{
                     x = (x * 5 + 7) % 4093;
                     data[i] = x;
                     i += 1;
                 }}
             }}
             // Phase 2 - thick: 3-point smoothing of the interior.
             #{n_inner};
             smooth[. + 1] = (data[.] + data[. + 1] + data[. + 2]) / 3;
             // Phase 3 - NUMA: sequential checksum of the smoothed signal.
             numa (16) {{
                 int acc = 0;
                 int i = 1;
                 while (i < {N} - 1) {{
                     acc = (acc * 31 + smooth[i]) % 999983;
                     i += 1;
                 }}
                 check = acc;
             }}
         }}",
        n_inner = N - 2,
    );
    let program = tcf::lang::compile(&source).expect("program compiles");
    let mut machine = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);
    machine.set_tracing(true);
    let summary = machine.run(5_000_000).expect("program halts");

    // Host reference.
    let mut data = vec![0i64; N];
    let mut x = 1i64;
    for v in data.iter_mut() {
        x = (x * 5 + 7) % 4093;
        *v = x;
    }
    let mut acc = 0i64;
    for i in 1..N - 1 {
        let s = (data[i - 1] + data[i] + data[i + 1]) / 3;
        assert_eq!(machine.peek(SMOOTH + i).unwrap(), s, "smooth[{i}]");
        acc = (acc * 31 + s) % 999_983;
    }
    assert_eq!(machine.peek(CHECK).unwrap(), acc);

    println!("dual-mode pipeline over {N} samples: generator -> smooth -> checksum verified");
    println!(
        "  steps {}, cycles {}, fetches {} (NUMA phases fetch per instruction, thick phase once)",
        summary.steps, summary.cycles, summary.machine.fetches
    );
    println!(
        "  utilization {:.2}; mode switches cost two instructions (numa / endnuma)",
        summary.machine.utilization()
    );
}

#[allow(dead_code)]
fn main() {
    run();
}
