//! One workload, all six variants of the extended PRAM-NUMA model.
//!
//! Runs the form of the vector add each variant is programmed with —
//! thickness statement, loop with thread arithmetic, `fork`, or chunked
//! vector code — verifies every result, and prints the cost comparison.
//!
//! ```sh
//! cargo run --example variants_tour
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::isa::program::Program;
use tcf::machine::MachineConfig;

const N: usize = 256;
const A: usize = 10_000;
const B: usize = 20_000;
const C: usize = 30_000;

fn decl() -> String {
    format!(
        "shared int a[{N}] @ {A};
         shared int b[{N}] @ {B};
         shared int c[{N}] @ {C};"
    )
}

fn thick_version() -> Program {
    tcf::lang::compile(&format!(
        "{} void main() {{ #{N}; c[.] = a[.] + b[.]; }}",
        decl()
    ))
    .unwrap()
}

fn loop_version() -> Program {
    tcf::lang::compile(&format!(
        "{} void main() {{
             int total = nprocs * nthreads;
             int i = gid;
             while (i < {N}) {{ c[i] = a[i] + b[i]; i = i + total; }}
         }}",
        decl()
    ))
    .unwrap()
}

fn fork_version() -> Program {
    tcf::lang::compile(&format!(
        "{} void main() {{ fork (i = 0; i < {N}) {{ c[i] = a[i] + b[i]; }} }}",
        decl()
    ))
    .unwrap()
}

fn chunked_version(width: usize) -> Program {
    tcf::lang::compile(&format!(
        "{} void main() {{
             int chunk = 0;
             while (chunk < {N}) {{
                 c[. + chunk] = a[. + chunk] + b[. + chunk];
                 chunk = chunk + {width};
             }}
         }}",
        decl()
    ))
    .unwrap()
}

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    let config = MachineConfig::small();
    let width = config.threads_per_group;
    let cases: Vec<(Variant, &str, Program)> = vec![
        (Variant::SingleInstruction, "#N; c.=a.+b.;", thick_version()),
        (
            Variant::Balanced { bound: 8 },
            "#N; c.=a.+b.; (b=8 slices)",
            thick_version(),
        ),
        (
            Variant::MultiInstruction,
            "fork per element",
            fork_version(),
        ),
        (
            Variant::SingleOperation,
            "loop + thread arithmetic",
            loop_version(),
        ),
        (
            Variant::ConfigurableSingleOperation,
            "loop + thread arithmetic",
            loop_version(),
        ),
        (
            Variant::FixedThickness { width },
            "chunked vector loop",
            chunked_version(width),
        ),
    ];

    println!(
        "vector add, {N} elements, machine P={} Tp={}:\n",
        config.groups, config.threads_per_group
    );
    println!(
        "{:<30} {:<28} {:>7} {:>9} {:>8} {:>6}",
        "variant", "program form", "steps", "cycles", "fetches", "util"
    );
    for (variant, form, program) in cases {
        let mut m = TcfMachine::new(config.clone(), variant, program);
        for i in 0..N {
            m.poke(A + i, i as i64).unwrap();
            m.poke(B + i, 2 * i as i64).unwrap();
        }
        let s = m.run(1_000_000).expect("halts");
        for i in 0..N {
            assert_eq!(m.peek(C + i).unwrap(), 3 * i as i64, "{variant:?} wrong");
        }
        println!(
            "{:<30} {:<28} {:>7} {:>9} {:>8} {:>6.2}",
            variant.name(),
            form,
            s.steps,
            s.cycles,
            s.machine.fetches,
            s.machine.utilization()
        );
    }
    println!("\nall six variants verified against the same inputs");
}

#[allow(dead_code)]
fn main() {
    run();
}
