//! Quickstart: a thick vector add on the extended PRAM-NUMA machine.
//!
//! The paper's flagship contrast (§4): where a fixed-thread PRAM program
//! needs a loop and thread arithmetic, a TCF program just sets the flow's
//! thickness to the problem size and writes the operation once.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    const N: usize = 1000;

    // A tce program: one flow, thickness N, no loop, no guards.
    let source = format!(
        "shared int a[{N}] @ 10000;
         shared int b[{N}] @ 20000;
         shared int c[{N}] @ 30000;
         void main() {{
             #{N};
             c[.] = a[.] + b[.];
         }}"
    );
    let program = tcf::lang::compile(&source).expect("program compiles");

    // A 4-group, 64-thread-slot machine running the Single-instruction
    // variant of the extended model.
    let config = MachineConfig::small();
    let mut machine = TcfMachine::new(config, Variant::SingleInstruction, program);

    // Host-side input initialization.
    for i in 0..N {
        machine.poke(10000 + i, i as i64).unwrap();
        machine.poke(20000 + i, (2 * i) as i64).unwrap();
    }

    let summary = machine.run(100_000).expect("program halts");

    // Check and report.
    for i in 0..N {
        assert_eq!(machine.peek(30000 + i).unwrap(), (3 * i) as i64);
    }
    println!("vector add of {N} elements: OK");
    println!(
        "  steps {:>6}   (independent of N: one TCF instruction per statement)",
        summary.steps
    );
    println!(
        "  cycles {:>5}   (grows with N: the work is real)",
        summary.cycles
    );
    println!("  issued ops {:>6}", summary.machine.issued());
    println!("  utilization {:.2}", summary.machine.utilization());
}

#[allow(dead_code)]
fn main() {
    run();
}
