//! Compile and run a tce source file from the command line.
//!
//! ```sh
//! cargo run --example tce_run -- path/to/program.tce [--variant si|bal|mi|so|cso|ft] \
//!     [--dump addr len] [--listing] [--trace]
//! ```
//!
//! Without a path, runs a built-in demo program.

use std::env;
use std::fs;
use std::process::ExitCode;

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

const DEMO: &str = "
// demo: thick prefix sums
shared int sum @ 100;
shared int out[32] @ 200;
void main() {
    #32;
    out[.] = prefix(sum, MPADD, . + 1);
}
";

fn parse_variant(s: &str, tp: usize) -> Option<Variant> {
    Some(match s {
        "si" => Variant::SingleInstruction,
        "bal" => Variant::Balanced { bound: 8 },
        "mi" => Variant::MultiInstruction,
        "so" => Variant::SingleOperation,
        "cso" => Variant::ConfigurableSingleOperation,
        "ft" => Variant::FixedThickness { width: tp },
        _ => return None,
    })
}

#[allow(dead_code)]
fn main() -> ExitCode {
    run_args(env::args().skip(1).collect())
}

/// The driver body on explicit arguments, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`. Empty arguments
/// run the built-in demo.
pub fn run_args(args: Vec<String>) -> ExitCode {
    let config = MachineConfig::small();
    let mut variant = Variant::SingleInstruction;
    let mut path: Option<String> = None;
    let mut dump: Option<(usize, usize)> = None;
    let mut listing = false;
    let mut trace = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match parse_variant(v, config.threads_per_group) {
                    Some(parsed) => variant = parsed,
                    None => {
                        eprintln!("unknown variant `{v}` (si|bal|mi|so|cso|ft)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--dump" => {
                let addr = it.next().and_then(|s| s.parse().ok());
                let len = it.next().and_then(|s| s.parse().ok());
                match (addr, len) {
                    (Some(a), Some(l)) => dump = Some((a, l)),
                    _ => {
                        eprintln!("--dump needs <addr> <len>");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--listing" => listing = true,
            "--trace" => trace = true,
            other => path = Some(other.to_string()),
        }
    }

    let source = match &path {
        Some(p) => match fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => DEMO.to_string(),
    };

    let program = match tcf::lang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if listing {
        println!("--- listing ---\n{}---------------", program.listing());
    }

    let mut machine = TcfMachine::new(config, variant, program);
    machine.set_tracing(trace);
    match machine.run(10_000_000) {
        Ok(s) => {
            println!(
                "halted: steps {}, cycles {}, issued {}, utilization {:.2}",
                s.steps,
                s.cycles,
                s.machine.issued(),
                s.machine.utilization()
            );
        }
        Err(e) => {
            eprintln!("runtime fault: {e}");
            return ExitCode::FAILURE;
        }
    }
    if trace {
        println!("{}", machine.trace().gantt(0));
    }
    if let Some((addr, len)) = dump {
        match machine.peek_range(addr, len) {
            Ok(words) => println!("mem[{addr}..{}] = {words:?}", addr + len),
            Err(e) => eprintln!("dump failed: {e}"),
        }
    } else if path.is_none() {
        // Demo: show the prefix results.
        let words = machine.peek_range(200, 32).unwrap();
        println!("prefix sums: {words:?}");
        println!("total:       {}", machine.peek(100).unwrap());
    }
    ExitCode::SUCCESS
}
