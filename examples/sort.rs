//! Parallel odd-even transposition sort with thick control flows.
//!
//! A classic fine-grained PRAM algorithm: `n` phases, each phase
//! compare-exchanging every (even|odd, +1) pair in parallel. On a TCF
//! machine a phase is one thick block of `n/2` compare-exchanges, and the
//! exchange itself is branch-free (`min`/`max` writes), so the whole sort
//! has no per-thread control flow at all — the style the model pushes you
//! towards.
//!
//! ```sh
//! cargo run --example sort
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

const N: usize = 128;
const DATA: usize = 10_000;
const SCRATCH_LO: usize = 20_000;
const SCRATCH_HI: usize = 30_000;

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    let half = N / 2;
    let source = format!(
        "shared int data[{N}] @ {DATA};
         shared int lo[{half}] @ {SCRATCH_LO};
         shared int hi[{half}] @ {SCRATCH_HI};
         void main() {{
             int phase = 0;
             while (phase < {N}) {{
                 // Even phase: pairs (0,1), (2,3), ...
                 #{half};
                 lo[.] = data[. * 2];
                 hi[.] = data[. * 2 + 1];
                 data[. * 2]     = (lo[.] < hi[.]) * lo[.] + (lo[.] >= hi[.]) * hi[.];
                 data[. * 2 + 1] = (lo[.] < hi[.]) * hi[.] + (lo[.] >= hi[.]) * lo[.];
                 // Odd phase: pairs (1,2), (3,4), ... (one fewer pair).
                 #{half} - 1;
                 lo[.] = data[. * 2 + 1];
                 hi[.] = data[. * 2 + 2];
                 data[. * 2 + 1] = (lo[.] < hi[.]) * lo[.] + (lo[.] >= hi[.]) * hi[.];
                 data[. * 2 + 2] = (lo[.] < hi[.]) * hi[.] + (lo[.] >= hi[.]) * lo[.];
                 phase = phase + 2;
             }}
         }}"
    );
    let program = tcf::lang::compile(&source).expect("program compiles");
    let mut machine = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);

    // A scrambled but deterministic input (values stay small and
    // non-negative so the arithmetic select cannot overflow).
    let input: Vec<i64> = (0..N as i64).map(|i| (i * 37 + 11) % 1009).collect();
    for (i, &v) in input.iter().enumerate() {
        machine.poke(DATA + i, v).unwrap();
    }

    let summary = machine.run(5_000_000).expect("sort halts");

    let got = machine.peek_range(DATA, N).unwrap();
    let mut expect = input.clone();
    expect.sort_unstable();
    assert_eq!(got, expect, "sort output mismatch");

    println!("odd-even transposition sort of {N} elements: sorted correctly");
    println!(
        "  {} phases x 2 thick blocks, steps {}, cycles {}, utilization {:.2}",
        N / 2,
        summary.steps,
        summary.cycles,
        summary.machine.utilization()
    );
    println!("  compare-exchange is branch-free: (a<b)*a + (a>=b)*b selects via arithmetic");
}

#[allow(dead_code)]
fn main() {
    run();
}
