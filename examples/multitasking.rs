//! Multitasking with tasks as TCFs (§5 of the paper).
//!
//! Spawns a set of independent tasks as flows and shows that switching
//! between buffer-resident tasks is free, while shrinking the TCF buffer
//! below the working set introduces the reload penalty — the knee the
//! extended model's cheap multitasking claim rests on.
//!
//! ```sh
//! cargo run --example multitasking
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::isa::asm::assemble;
use tcf::machine::MachineConfig;

const NTASKS: usize = 12;

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    let program = assemble(
        "main:
            halt                 ; the root task retires immediately
        task:
            mfs r1, fid          ; task id
            ldi r2, 30
        loop:
            sub r2, r2, 1
            bnez r2, loop
            ldi r3, 9000
            add r3, r3, r1
            st r1, [r3+0]        ; publish completion
            halt
        ",
    )
    .expect("program assembles");
    let entry = program.label("task").unwrap();

    println!("{NTASKS} tasks, TCF buffer capacity sweep:");
    println!(
        "{:>12}  {:>8}  {:>8}  {:>15}  {:>12}",
        "buffer slots", "switches", "misses", "overhead cycles", "total cycles"
    );
    for slots in [2usize, 4, 8, 16, 32] {
        let mut config = MachineConfig::small();
        config.tcf_buffer_slots = slots;
        let mut machine = TcfMachine::new(config, Variant::SingleInstruction, program.clone());
        let mut ids = Vec::new();
        for _ in 0..NTASKS {
            ids.push(machine.spawn_task(entry, 1).expect("task spawns"));
        }
        let summary = machine.run(1_000_000).expect("tasks halt");
        for id in ids {
            assert_eq!(
                machine.peek(9000 + id as usize).unwrap(),
                id as i64,
                "task {id} did not complete"
            );
        }
        let switches: u64 = machine.buffers().iter().map(|b| b.switches).sum();
        let misses: u64 = machine.buffers().iter().map(|b| b.misses).sum();
        println!(
            "{slots:>12}  {switches:>8}  {misses:>8}  {:>15}  {:>12}",
            summary.machine.overhead_cycles, summary.cycles
        );
    }
    println!("\nonce the working set fits the buffer, every switch after the cold load is free");
}

#[allow(dead_code)]
fn main() {
    run();
}
