//! An O(n²) interaction step with log-depth reduction: 1-D "gravity".
//!
//! Each of `n` bodies sums a pairwise interaction over all other bodies.
//! The guest computes it the quadratic way — an outer flow of thickness
//! `n`, an inner *flow-wise* loop over the n partners — plus a
//! multioperation to reduce the total momentum in one step. For a linear
//! spring force `f_i = Σ_j (x_j - x_i)` the result has the closed form
//! `n·mean(x) - n·x_i`, which the host uses for verification.
//!
//! ```sh
//! cargo run --example nbody
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

const N: usize = 64;
const X: usize = 10_000;
const F: usize = 20_000;
const PTOT: usize = 50;

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    let source = format!(
        "shared int x[{N}] @ {X};
         shared int f[{N}] @ {F};
         shared int ptotal @ {PTOT};
         void main() {{
             #{N};
             int acc = 0;
             int j = 0;
             while (j < {N}) {{
                 acc = acc + x[j] - x[.];
                 j = j + 1;
             }}
             f[.] = acc;
             multi(ptotal, MPADD, acc);
         }}"
    );
    let program = tcf::lang::compile(&source).expect("program compiles");
    let mut machine = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);

    let xs: Vec<i64> = (0..N as i64).map(|i| (i * i * 3 + 11 * i) % 997).collect();
    for (i, &x) in xs.iter().enumerate() {
        machine.poke(X + i, x).unwrap();
    }

    let summary = machine.run(1_000_000).expect("program halts");

    let sum: i64 = xs.iter().sum();
    let mut total = 0;
    for (i, &x) in xs.iter().enumerate() {
        let expect = sum - N as i64 * x;
        let got = machine.peek(F + i).unwrap();
        assert_eq!(got, expect, "force on body {i}");
        total += expect;
    }
    assert_eq!(machine.peek(PTOT).unwrap(), total);
    assert_eq!(total, 0, "spring forces are momentum-conserving");

    println!("n-body spring step, n = {N}: all forces verified, total momentum 0");
    println!(
        "  inner loop is flow-wise (uniform j), body arithmetic is thick: {} issued ops, {} cycles",
        summary.machine.issued(),
        summary.cycles
    );
    println!(
        "  note: the j-loop costs O(n) steps; the per-body work over n partners is the thick part"
    );
}

#[allow(dead_code)]
fn main() {
    run();
}
