//! Edge-parallel BFS (shortest hop distances) with multioperations.
//!
//! Bellman–Ford-style level relaxation: thickness = number of edges; each
//! implicit thread relaxes one edge with a combining `MPMIN` write, and a
//! flow-wise convergence flag (set with `multi(..., MPMAX, ...)`) decides
//! — with a *uniform* branch — whether another round is needed. Irregular
//! graph parallelism without a single per-thread branch.
//!
//! ```sh
//! cargo run --example bfs
//! ```

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

const NODES: usize = 64;
const SRC_BASE: usize = 10_000; // edge sources
const DST_BASE: usize = 12_000; // edge destinations
const DIST: usize = 14_000; // per-node distance
const CHANGED: usize = 90; // convergence flag
const INF: i64 = 1 << 20;

/// A deterministic sparse digraph: ring + skip links.
fn edges() -> Vec<(usize, usize)> {
    let mut e = Vec::new();
    for v in 0..NODES {
        e.push((v, (v + 1) % NODES));
        if v % 3 == 0 {
            e.push((v, (v + 7) % NODES));
        }
        if v % 5 == 0 {
            e.push(((v + 13) % NODES, v));
        }
    }
    e
}

/// Host-side reference BFS.
fn reference_dist(edges: &[(usize, usize)]) -> Vec<i64> {
    let mut adj = vec![Vec::new(); NODES];
    for &(u, v) in edges {
        adj[u].push(v);
    }
    let mut dist = vec![INF; NODES];
    dist[0] = 0;
    let mut frontier = vec![0usize];
    let mut level = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in &adj[u] {
                if dist[v] == INF {
                    dist[v] = level;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// The example body, callable from the smoke tests
/// (`tests/examples_smoke.rs`) as well as from `main`.
pub fn run() {
    let es = edges();
    let ne = es.len();

    let source = format!(
        "shared int esrc[{ne}] @ {SRC_BASE};
         shared int edst[{ne}] @ {DST_BASE};
         shared int dist[{NODES}] @ {DIST};
         shared int changed @ {CHANGED};
         void main() {{
             changed = 1;
             while (changed) {{
                 changed = 0;
                 #{ne};
                 int u = esrc[.];
                 int v = edst[.];
                 int cand = dist[u] + 1;
                 int old = prefix(dist[v], MPMIN, cand);
                 multi(changed, MPMAX, old > cand);
                 #1;
             }}
         }}"
    );
    let program = tcf::lang::compile(&source).expect("program compiles");
    let mut machine = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);

    for (i, &(u, v)) in es.iter().enumerate() {
        machine.poke(SRC_BASE + i, u as i64).unwrap();
        machine.poke(DST_BASE + i, v as i64).unwrap();
    }
    for v in 0..NODES {
        machine
            .poke(DIST + v, if v == 0 { 0 } else { INF })
            .unwrap();
    }

    let summary = machine.run(5_000_000).expect("BFS converges");

    let expect = reference_dist(&es);
    let got = machine.peek_range(DIST, NODES).unwrap();
    assert_eq!(got, expect, "distances diverge from host BFS");
    let reachable = expect.iter().filter(|&&d| d < INF).count();
    let diameter = expect.iter().filter(|&&d| d < INF).max().unwrap();

    println!("edge-parallel BFS over {NODES} nodes / {ne} edges: verified against host BFS");
    println!("  {reachable} reachable, eccentricity {diameter} from node 0");
    println!(
        "  steps {}, cycles {}, every relaxation round is one thick block of {ne} edges",
        summary.steps, summary.cycles
    );
    println!("  convergence via a combining MPMAX flag and a uniform flow-wise branch");
}

#[allow(dead_code)]
fn main() {
    run();
}
