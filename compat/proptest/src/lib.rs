//! Offline proptest shim: deterministic, sampling-based property testing.
//!
//! Implements the subset of the proptest 1.x API this workspace uses (see
//! `compat/README.md`): strategies are plain samplers driven by a seeded
//! xorshift generator, `proptest!` runs each test for `Config::cases`
//! sampled inputs, and `prop_assert*!` report failures with the case
//! index so a run is reproducible. There is no shrinking and no failure
//! persistence.

pub mod test_runner {
    use std::fmt;

    /// Per-block configuration, selected with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xorshift64* generator. Each test derives its seed
    /// from the test name so runs are stable across invocations.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn seeded(seed: u64) -> TestRng {
            TestRng(seed | 1)
        }

        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::seeded(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `0..n` (`n == 0` yields 0).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A source of sampled values. Unlike real proptest there is no value
    /// tree and no shrinking: a strategy is just a deterministic sampler.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }

        /// Depth-limited recursion: the innermost level samples from
        /// `self`, and each of `depth` outer levels is built by `recurse`
        /// from the level below it.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = recurse(cur.clone()).boxed();
            }
            cur
        }
    }

    /// Clonable type-erased strategy (`Rc` so strategy graphs can share
    /// subtrees, as `prop_recursive` closures do).
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                base: self.base.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    let span = if hi > lo { (hi - lo) as u128 } else { 1 };
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 G, 6 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 G, 6 H, 7 I)
    }

    /// String patterns used as strategies (`"\\PC{0,200}"`). The pattern
    /// is interpreted loosely: a trailing `{m,n}` bounds the length and
    /// characters are drawn from a printable pool — sufficient for the
    /// robustness tests, which only require arbitrary textual input.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_repetition(self).unwrap_or((0, 16));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            const POOL: &str = "abcdefghijklmnopqrstuvwxyz\
                                ABCDEFGHIJKLMNOPQRSTUVWXYZ\
                                0123456789 \t,:;()[]{}<>+-*/\\#.!?_\"'%&|^~=@\u{e9}\u{3b1}\u{4e2d}";
            let pool: Vec<char> = POOL.chars().collect();
            (0..len)
                .map(|_| pool[rng.below(pool.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_repetition(pat: &str) -> Option<(usize, usize)> {
        let pat = pat.strip_suffix('}')?;
        let open = pat.rfind('{')?;
        let body = &pat[open + 1..];
        let (a, b) = body.split_once(',')?;
        let min = a.trim().parse().ok()?;
        let max = b.trim().parse().ok()?;
        (min <= max).then_some((min, max))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias toward boundary values, which catch more bugs
                    // than uniform noise at these case counts.
                    match rng.next_u64() % 8 {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        3 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{fffd}')
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    pub fn select<T: Clone, I: Into<Vec<T>>>(items: I) -> Select<T> {
        let items = items.into();
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vectors of sampled elements with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::bool::ANY` — either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace of the real crate.
    pub mod prop {
        pub use crate::{bool, collection, sample, strategy};
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Parameters may be `pat in strategy` or
/// `name: Type` (the latter samples `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__proptest_case!(rng; ($($params)*) $body);
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; () $body:block) => {
        (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::std::result::Result::Ok(())
        })()
    };
    ($rng:ident; ($pat:pat_param in $strategy:expr $(, $($rest:tt)*)?) $body:block) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_case!($rng; ($($($rest)*)?) $body)
    }};
    ($rng:ident; ($name:ident : $ty:ty $(, $($rest:tt)*)?) $body:block) => {{
        let $name = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_case!($rng; ($($($rest)*)?) $body)
    }};
}
