//! Offline criterion shim: a minimal wall-clock benchmark harness with
//! the criterion 0.5 API surface this workspace uses (see
//! `compat/README.md`). Each benchmark runs a warmup iteration followed
//! by a fixed number of timed samples and prints the mean, minimum, and
//! maximum wall-clock time per iteration. No statistics, baselines, or
//! HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Identifier of a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one untimed warmup call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{group}/{id}  (no samples)");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    println!(
        "{group}/{id}  time: [{min:?} {mean:?} {max:?}]  ({} samples)",
        durations.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion semantics: the
    /// sample count, not iterations per sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.id, &b.durations);
        self
    }

    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b.durations);
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            durations: Vec::new(),
        };
        f(&mut b);
        report("bench", id, &b.durations);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
