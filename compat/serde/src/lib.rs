//! Offline serde shim: marker traits plus no-op derives.
//!
//! See `compat/README.md`. The derive macros expand to nothing, so these
//! traits intentionally have no required methods — they exist only so
//! `use serde::{Deserialize, Serialize};` and generic bounds keep
//! compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize`.
pub trait DeserializeTrait {}
