//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace derives the serde traits on its data types for
//! forward-compatibility but never actually serializes through serde, so
//! the derives can expand to nothing at all. This keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling without a
//! registry connection (and without `syn`/`quote`).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
